// Discrete-event simulation kernel.
//
// The paper evaluated Rocksteady on a 24-node CloudLab cluster with 40 Gbps
// kernel-bypass NICs. That hardware is substituted here by a deterministic
// single-threaded discrete-event simulation: every server core, NIC, and link
// is a simulated resource, and all timing comes from sim::CostModel. Data
// structures (log, hash table) are real and mutate inside event callbacks;
// only *time* is simulated.
//
// Engine (see DESIGN.md "Engine performance"): events are 128-byte slab-
// pooled objects whose callbacks live inline (EventFn), organized in a
// calendar queue — a ring of fixed-width time buckets covering a sliding
// window, with a min-heap overflow for events beyond the horizon. The
// schedule → dispatch → free cycle touches no allocator. Dispatch order is
// identical to the old binary-heap engine: (time, seq) with seq assigned at
// scheduling time, so equal-time events stay FIFO and trace hashes are
// unchanged.
#ifndef ROCKSTEADY_SRC_SIM_SIMULATOR_H_
#define ROCKSTEADY_SRC_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/dcheck.h"
#include "src/common/inline_function.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace rocksteady {

// Event callbacks store up to this many capture bytes inline (larger ones
// heap-box and count a fallback). 88 makes the whole Event exactly two
// cache lines, and fits every wrapper in the stack: the widest hot-path
// closure — a CoreSet dispatch/completion wrapper or a Network delivery
// wrapper carrying a nested 64-byte-inline callback — is exactly 88 bytes.
inline constexpr size_t kEventInlineBytes = 88;
using EventFn = InlineFunction<void(), kEventInlineBytes>;

class LaneSet;

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator();

  Tick now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now). Events scheduled for the
  // same tick run in scheduling order (FIFO), which keeps runs deterministic.
  // Scheduling in the past is a checked error: fatal in debug builds, and
  // clamped to now() in release builds — time never flows backwards.
  void At(Tick t, EventFn fn);

  void After(Tick delay, EventFn fn) { At(now_ + delay, std::move(fn)); }

  // Runs events until the queue drains. Returns the number processed.
  size_t Run();

  // Runs events with timestamp <= `t`, then advances the clock to `t`.
  // Returns the number processed. `t` must be >= now(): the clock never
  // rewinds (checked error in debug builds; no-op in release builds).
  size_t RunUntil(Tick t);

  bool Idle() const { return ring_count_ == 0 && overflow_.empty(); }
  size_t events_processed() const { return events_processed_; }

  // Order-sensitive digest of every event dispatched so far: two runs of
  // the same scenario are deterministic iff their trace hashes are equal.
  // Mixed from each event's (time, seq) at dispatch, so any divergence in
  // scheduling order or timing changes the hash.
  uint64_t trace_hash() const { return trace_hash_; }

  Random& rng() { return rng_; }

  // Event-pool telemetry. In steady state the free list satisfies every
  // schedule, so slab_allocations stays flat — asserted by the allocation
  // regression test, reported by the engine bench.
  struct PoolStats {
    uint64_t slab_allocations = 0;  // Times the pool grew by one slab.
    uint64_t live_events = 0;       // Currently scheduled.
    uint64_t free_events = 0;       // Pooled, ready for reuse.
  };
  PoolStats pool_stats() const {
    return PoolStats{slab_allocations_, ring_count_ + overflow_.size(),
                     free_count_};
  }

 private:
  friend class LaneSet;

  // One pooled event: two cache lines (32 bytes of links + 96-byte EventFn).
  // prev/next double as the intrusive bucket-list links and, for free
  // events, the free-list thread (next only).
  struct Event {
    Tick time = 0;
    uint64_t seq = 0;  // Tie-break so equal-time events stay FIFO.
    Event* prev = nullptr;
    Event* next = nullptr;
    EventFn fn;
  };
  static_assert(sizeof(Event) == 128, "Event should stay two cache lines");

  // Calendar geometry: 8192 buckets of 1024 ns cover an ~8.4 ms window —
  // wider than the RPC timeout, so nearly all events land in the ring.
  // Later events (leases, deadlines) wait in the overflow heap and are
  // adopted when the window slides over them.
  static constexpr int kBucketWidthLog2 = 10;
  static constexpr size_t kNumBuckets = 8192;
  static constexpr size_t kBucketMask = kNumBuckets - 1;
  static constexpr size_t kOccupancyWords = kNumBuckets / 64;
  static constexpr size_t kSlabEvents = 1024;

  struct BucketList {
    Event* head = nullptr;
    Event* tail = nullptr;
  };

  static uint64_t BucketOf(Tick t) { return t >> kBucketWidthLog2; }
  static bool EventLater(const Event* a, const Event* b);

  void MixTrace(Tick time, uint64_t seq) {
    // FNV-1a over the event's (time, seq); cheap enough to keep always on.
    trace_hash_ = (trace_hash_ ^ time) * 0x100000001b3ull;
    trace_hash_ = (trace_hash_ ^ seq) * 0x100000001b3ull;
  }

  // --- Lane mode (see src/sim/lane_set.h). ---
  // When this simulator is one lane of a LaneSet, events execute in
  // conservative windows [start, window_end_) and every At() made inside a
  // window is *logged* so the LaneSet's merge can reconstruct the canonical
  // single-lane sequence numbers. Three op shapes exist:
  //  * kLocal:    the event executes within this window. It enters the queue
  //               under a provisional seq (kProvSeqBit | index); the merge
  //               writes the canonical value into prov_seq_[index].
  //  * kDeferred: the event's time is at/past the horizon. It is held out of
  //               the queue until the merge stamps its canonical seq, then
  //               inserted before the next window.
  //  * kCross:    a cross-lane Network send. It sits in the LaneSet mailbox
  //               cell (dst_lane, index); the merge stamps its seq there.
  // A provisional seq compares greater than every canonical seq, which is
  // exactly the canonical same-tick order: an event scheduled during the
  // window always has a later canonical seq than anything queued before it.
  static constexpr uint64_t kProvSeqBit = 1ull << 63;
  enum class OpKind : uint8_t { kLocal, kDeferred, kCross };
  struct OpRecord {
    OpKind kind;
    uint32_t dst_lane = 0;  // kCross: destination lane.
    uint32_t index = 0;     // kLocal: prov_seq_ slot; kCross: mailbox slot.
    Event* deferred = nullptr;  // kDeferred: the held event.
  };
  struct DispatchRecord {
    Tick time;
    uint64_t seq;  // Raw (possibly provisional) seq at dispatch.
    uint32_t op_begin;
    uint32_t op_count;
  };

  // Puts this simulator in lane mode: At() routes through LaneAt(), and
  // canonical seqs come from the LaneSet's shared counter.
  void BeginLaneMode(LaneSet* lane_set, int lane, uint64_t* lane_seq);
  // Runs every queued event with time < `end` without mixing the trace
  // (the merge does, in canonical order). Returns events dispatched.
  size_t RunWindow(Tick end);
  // Lane-mode scheduling (root / in-window / deferred; see above).
  void LaneAt(Tick t, EventFn fn);
  // Records a cross-lane send op made by the current in-window callback.
  void LaneLogCrossOp(uint32_t dst_lane, uint32_t index) {
    ROCKSTEADY_DCHECK(in_window_);
    op_log_.push_back(OpRecord{OpKind::kCross, dst_lane, index, nullptr});
  }
  // Inserts deferred events (canonical seqs stamped by the merge) into the
  // queue; called between windows.
  void InsertDeferred();

  Event* AllocEvent();
  void FreeEvent(Event* e);
  // Ring-or-overflow insertion of a fully formed event (time, seq, fn set).
  void InsertQueued(Event* e);
  void InsertRing(Event* e, uint64_t ab);
  // Slides the window so `new_base` is its first bucket and adopts every
  // overflow event that now falls inside it.
  void AdvanceWindowTo(uint64_t new_base);
  // Absolute bucket number of the first occupied ring bucket at or after
  // `scan_ab_`. Requires ring_count_ > 0.
  uint64_t FirstOccupiedBucket();
  // Detaches and returns the earliest event (nullptr when idle), advancing
  // the window if the earliest lives in the overflow heap.
  Event* PopMin();
  // Time of the earliest event without popping or sliding the window.
  bool PeekMinTime(Tick* t);

  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
  uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV offset basis.

  // Ring + overflow queue state.
  std::vector<BucketList> buckets_{kNumBuckets};
  std::array<uint64_t, kOccupancyWords> occupancy_{};
  uint64_t win_base_ = 0;  // Absolute bucket number of the window's start.
  uint64_t scan_ab_ = 0;   // Monotone scan cursor (absolute bucket number).
  size_t ring_count_ = 0;
  std::vector<Event*> overflow_;  // Min-heap on (time, seq).

  // Slab pool.
  std::vector<std::unique_ptr<Event[]>> slabs_;
  Event* free_list_ = nullptr;
  uint64_t slab_allocations_ = 0;
  uint64_t free_count_ = 0;

  // Lane-mode state (inert in the default single-lane configuration). All of
  // it is owned by this lane's worker except where the LaneSet merge writes
  // canonical seqs between window phases (barrier-ordered, see lane_set.cc).
  bool lane_mode_ = false;
  bool in_window_ = false;
  int lane_ = 0;
  Tick window_end_ = 0;
  LaneSet* lane_set_ = nullptr;
  uint64_t* lane_seq_ = nullptr;  // LaneSet's canonical sequence counter.
  std::vector<DispatchRecord> win_log_;  // This window's dispatches, in order.
  std::vector<OpRecord> op_log_;         // This window's scheduling ops.
  std::vector<uint64_t> prov_seq_;       // Provisional slot -> canonical seq.

  Random rng_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_SIMULATOR_H_
