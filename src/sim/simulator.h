// Discrete-event simulation kernel.
//
// The paper evaluated Rocksteady on a 24-node CloudLab cluster with 40 Gbps
// kernel-bypass NICs. That hardware is substituted here by a deterministic
// single-threaded discrete-event simulation: every server core, NIC, and link
// is a simulated resource, and all timing comes from sim::CostModel. Data
// structures (log, hash table) are real and mutate inside event callbacks;
// only *time* is simulated.
#ifndef ROCKSTEADY_SRC_SIM_SIMULATOR_H_
#define ROCKSTEADY_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/dcheck.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace rocksteady {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now). Events scheduled for the
  // same tick run in scheduling order (FIFO), which keeps runs deterministic.
  // Scheduling in the past is a checked error: fatal in debug builds, and
  // clamped to now() in release builds — time never flows backwards.
  void At(Tick t, std::function<void()> fn);

  void After(Tick delay, std::function<void()> fn) { At(now_ + delay, std::move(fn)); }

  // Runs events until the queue drains. Returns the number processed.
  size_t Run();

  // Runs events with timestamp <= `t`, then advances the clock to `t`.
  // Returns the number processed. `t` must be >= now(): the clock never
  // rewinds (checked error in debug builds; no-op in release builds).
  size_t RunUntil(Tick t);

  bool Idle() const { return queue_.empty(); }
  size_t events_processed() const { return events_processed_; }

  // Order-sensitive digest of every event dispatched so far: two runs of
  // the same scenario are deterministic iff their trace hashes are equal.
  // Mixed from each event's (time, seq) at dispatch, so any divergence in
  // scheduling order or timing changes the hash.
  uint64_t trace_hash() const { return trace_hash_; }

  Random& rng() { return rng_; }

 private:
  struct Event {
    Tick time;
    uint64_t seq;  // Tie-break so equal-time events stay FIFO.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void MixTrace(const Event& event) {
    // FNV-1a over the event's (time, seq); cheap enough to keep always on.
    trace_hash_ = (trace_hash_ ^ event.time) * 0x100000001b3ull;
    trace_hash_ = (trace_hash_ ^ event.seq) * 0x100000001b3ull;
  }

  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
  uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV offset basis.
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Random rng_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_SIMULATOR_H_
