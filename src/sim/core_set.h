// RAMCloud's dispatch/worker threading model as simulated resources.
//
// §3.1: "One core handles dispatch; it polls the network for messages, and it
// assigns tasks to worker cores or queues them if no workers are idle. Each
// core runs one thread, and running tasks are never preempted. ... If no
// cores are available, the task is placed in a queue corresponding to its
// priority. When a worker becomes available ... it is assigned a task from
// the front of the highest-priority queue with any entries."
//
// CoreSet models exactly that: a serial dispatch resource plus N worker
// resources fed from strict non-preemptive priority FIFOs. Tail latency in
// every experiment emerges from this queueing discipline.
//
// Hot path: dispatch functions and worker work/done callbacks are inline
// (64 capture bytes) so enqueueing and completing a task allocates nothing;
// the epoch-guard wrappers the CoreSet adds fit EventFn's 88 bytes exactly.
#ifndef ROCKSTEADY_SRC_SIM_CORE_SET_H_
#define ROCKSTEADY_SRC_SIM_CORE_SET_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/inline_function.h"
#include "src/common/timeseries.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace rocksteady {

// Worker-task priorities, highest first. §4.1: PriorityPulls were configured
// with the highest priority in the system; bulk Pulls (and replay) with the
// lowest; client requests in between.
enum class Priority : uint8_t {
  kPriorityPull = 0,
  kClient = 1,
  kReplication = 2,
  kMigration = 3,  // Bulk pulls on the source, replay on the target.
};
inline constexpr size_t kNumPriorities = 4;

// Inline capture budget for core callbacks. 64 holds every hot-path closure
// (the widest — a master's RPC-completion `done` — captures a `this`, a
// shared handle, and a small value), and leaves the CoreSet's own 24-byte
// {this, epoch, callback} wrappers exactly at EventFn's 88.
inline constexpr size_t kCoreInlineBytes = 64;
using DispatchFn = InlineFunction<void(), kCoreInlineBytes>;
using TaskFn = InlineFunction<Tick(), kCoreInlineBytes>;
using DoneFn = InlineFunction<void(), kCoreInlineBytes>;

class CoreSet {
 public:
  // A worker task: `work` runs when a worker picks the task up and returns
  // the simulated service time; `done` (optional) runs at completion.
  struct WorkerTask {
    Priority priority;
    TaskFn work;
    DoneFn done;
  };

  CoreSet(Simulator* sim, int num_workers);

  CoreSet(const CoreSet&) = delete;
  CoreSet& operator=(const CoreSet&) = delete;

  // Serializes `fn` on the dispatch core; `fn` runs after `cost` of dispatch
  // time (and after any earlier dispatch work).
  void EnqueueDispatch(Tick cost, DispatchFn fn);

  // Hands a task to an idle worker, or queues it at its priority.
  void EnqueueWorker(WorkerTask task);

  // A task that *holds* its worker until externally finished — used to model
  // synchronous RPC waits inside a worker (the naive PriorityPull design the
  // paper compares against in §4.4, where "workers at the target wait for
  // PriorityPulls to return"). `work` runs when a worker is acquired and
  // receives a finish callback; the worker stays busy (and is charged as
  // busy) until finish(extra_cost) is invoked and `extra_cost` more time
  // elapses. Held tasks are rare (one per synchronous wait, off the steady-
  // state path), so the copyable std::function callback shape is kept.
  struct HeldTask {
    Priority priority;
    std::function<void(std::function<void(Tick)> finish)> work;  // lint:allow-churn
  };
  void EnqueueWorkerHeld(HeldTask task);

  bool HasIdleWorker() const { return idle_workers_ > 0; }
  int idle_workers() const { return idle_workers_; }
  int num_workers() const { return num_workers_; }
  size_t QueuedTasks(Priority p) const { return queues_[static_cast<size_t>(p)].size(); }

  // Admission control: an optional per-priority queue bound (0 = unbounded).
  // CoreSet never drops work itself — handlers consult QueueFull() before
  // enqueueing and reject with Status::kRetryLater, so the sender's seeded
  // backoff machinery paces retries instead of work vanishing silently.
  void SetQueueBound(Priority p, size_t bound) { bounds_[static_cast<size_t>(p)] = bound; }
  size_t QueueBound(Priority p) const { return bounds_[static_cast<size_t>(p)]; }
  bool QueueFull(Priority p) const {
    const size_t bound = bounds_[static_cast<size_t>(p)];
    return bound != 0 && queues_[static_cast<size_t>(p)].size() >= bound;
  }

  // How far behind the dispatch core is right now (0 when idle): one of the
  // source-load signals piggybacked on pull replies for adaptive pacing.
  Tick DispatchBacklog() const {
    return dispatch_free_at_ > sim_->now() ? dispatch_free_at_ - sim_->now() : 0;
  }

  // Optional utilization recorders (Figure 11 / Figure 14 timelines).
  void set_dispatch_util(UtilizationTimeline* util) { dispatch_util_ = util; }
  void set_worker_util(UtilizationTimeline* util) { worker_util_ = util; }

  // Lifetime totals, for load summaries (Figure 3's CPU-load panel).
  Tick total_dispatch_busy() const { return total_dispatch_busy_; }
  Tick total_worker_busy() const { return total_worker_busy_; }
  void ResetBusyCounters() {
    total_dispatch_busy_ = 0;
    total_worker_busy_ = 0;
  }

  // Simulates a server crash: all queued work is dropped and new work is
  // ignored until Restart().
  void Halt();
  void Restart();
  bool halted() const { return halted_; }

  // Bumped on every Halt(); lets layers above stamp in-flight work and
  // discard completions that straddle a crash.
  uint64_t epoch() const { return epoch_; }

  // Straggler injection: every dispatch and worker cost is multiplied by
  // `factor` (>= 1.0) until reset to 1.0. Models a core that slows down
  // (thermal throttling, noisy neighbor) without stopping.
  void SetSlowdown(double factor) { slowdown_ = factor < 1.0 ? 1.0 : factor; }
  double slowdown() const { return slowdown_; }

 private:
  // Internal unified task: either a timed task (work/done) or a held task.
  struct AnyTask {
    Priority priority;
    TaskFn work;
    DoneFn done;
    std::function<void(std::function<void(Tick)>)> held_work;  // Non-null = held.  lint:allow-churn
  };

  void Enqueue(AnyTask task);
  void StartWorker(AnyTask task);
  void WorkerFinished(DoneFn done, uint64_t epoch);
  void PumpQueues();
  Tick Slow(Tick cost) const {
    return slowdown_ == 1.0 ? cost : static_cast<Tick>(static_cast<double>(cost) * slowdown_);
  }

  Simulator* sim_;
  int num_workers_;
  int idle_workers_;
  bool halted_ = false;
  double slowdown_ = 1.0;
  // Bumped on Halt(); in-flight completions from an older epoch are stale
  // and must not return their worker to the pool.
  uint64_t epoch_ = 0;

  Tick dispatch_free_at_ = 0;
  std::array<std::deque<AnyTask>, kNumPriorities> queues_;
  std::array<size_t, kNumPriorities> bounds_{};  // 0 = unbounded.

  UtilizationTimeline* dispatch_util_ = nullptr;
  UtilizationTimeline* worker_util_ = nullptr;
  Tick total_dispatch_busy_ = 0;
  Tick total_worker_busy_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_CORE_SET_H_
