// Sharded event lanes with a deterministic merge (ROADMAP item 1).
//
// Partitions the simulation into N lanes, each owning one calendar-queue
// Simulator and a disjoint set of simulated nodes (servers, cores, NICs).
// Lanes execute conservatively in lookahead windows: with L = the minimum
// cross-lane link latency (per-message cost + propagation), every event in
// [start, start + L) can only schedule cross-lane work at or past the
// horizon, so lanes run a whole window without seeing each other. Cross-lane
// Network sends land in per-(src-lane, dst-lane) mailboxes and are adopted
// by the destination lane at the next barrier.
//
// Determinism is exact, not statistical: after each window a sequential
// merge walks the lanes' dispatch logs in canonical (time, seq) order and
// re-derives the *single-lane* sequence number of every scheduling op (see
// Simulator::LaneAt). The canonical seq of an op depends only on its
// parent's dispatch order and its index within the parent's callback —
// never on window boundaries, lane count, or threading — so --lanes=1 and
// --lanes=N, threaded or not, produce bit-identical trace hashes
// (DESIGN.md "Sharded execution" has the proof sketch).
//
// Threading: with threads enabled, lane 0 runs on the driving thread and
// lanes 1..N-1 on persistent workers; each window is phase A (parallel
// RunWindow), phase B (sequential merge on the driver), phase C (parallel
// deferred-insert + mailbox drain). Handoff is one acquire/release epoch
// pair per lane per phase. Without threads the same loop runs the lanes
// sequentially — the schedule is identical either way.
#ifndef ROCKSTEADY_SRC_SIM_LANE_SET_H_
#define ROCKSTEADY_SRC_SIM_LANE_SET_H_

#include <atomic>   // lint:allow-nondeterminism — barrier epochs; the event schedule they guard is deterministic.
#include <deque>
#include <functional>
#include <memory>
#include <thread>   // lint:allow-nondeterminism — lane workers; conservative windows keep the schedule exact.
#include <vector>

#include "src/common/annotations.h"
#include "src/common/random.h"
#include "src/sim/simulator.h"

namespace rocksteady {

using NodeId = uint32_t;

class LaneSet {
 public:
  struct Config {
    int lanes = 1;
    bool threads = false;
    // Conservative safe horizon: the minimum cross-lane delivery latency.
    // Clusters pass CostModel::net_per_message_ns + net_propagation_ns.
    Tick lookahead = 1;
    uint64_t seed = 1;
  };

  explicit LaneSet(const Config& config);
  ~LaneSet();

  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  int lanes() const { return static_cast<int>(sims_.size()); }
  bool threads() const { return config_.threads; }
  Simulator& lane_sim(int lane) { return *sims_[static_cast<size_t>(lane)]; }

  // --- Node placement (setup time, before any Run). ---
  // Assigns a simulated node to a lane and seeds its private RNG stream.
  // Nodes must be assigned in id order (0, 1, 2, ...).
  void AssignNode(NodeId node, int lane);
  int lane_of(NodeId node) const { return lane_of_[node]; }
  Simulator* SimFor(NodeId node) { return sims_[static_cast<size_t>(lane_of_[node])].get(); }
  // The node's private RNG stream. Draws happen in the node's event order,
  // which is lane-count- and thread-invariant, unlike sharing a lane rng.
  Random& NodeRng(NodeId node) { return node_rng_[node]; }

  // --- Cross-lane mail (called by Network::Send). ---
  // Posts a delivery onto dst_lane at `deliver` (>= the current window's
  // horizon when called in-window; lanes never see intra-window traffic).
  void PostCrossLane(Simulator* src, int dst_lane, Tick deliver, EventFn fn);

  // --- Safe-point tasks. ---
  // Runs `fn` on the driving thread once every event before time `t` has
  // executed and before any event at or after `t` does, with all lanes
  // parked — the lane-mode home for cross-cutting control actions
  // (migration kickoff, operator actions) that legacy code runs as plain
  // events. Placement depends only on the global event timeline, so it is
  // lane-count- and thread-invariant.
  void AtSafePoint(Tick t, std::function<void()> fn);  // lint:allow-churn — cold, a handful per run.

  // --- Execution (same contract as Simulator::Run / RunUntil). ---
  size_t Run();
  size_t RunUntil(Tick t);

  Tick now() const { return now_; }
  uint64_t trace_hash() const { return trace_hash_; }
  size_t events_processed() const;
  uint64_t windows_run() const { return windows_run_; }

  // Per-window instrumentation for the engine bench's critical-path model
  // (only invoked when threads are off; wall-clock timing stays in bench/).
  struct PhaseHooks {
    std::function<void(int lane)> lane_begin;  // lint:allow-churn — bench-only, per window.
    std::function<void(int lane)> lane_end;    // lint:allow-churn — bench-only, per window.
    std::function<void()> merge_begin;         // lint:allow-churn — bench-only, per window.
    std::function<void()> merge_end;           // lint:allow-churn — bench-only, per window.
  };
  void set_phase_hooks(PhaseHooks hooks) { hooks_ = std::move(hooks); }

 private:
  // One cross-lane delivery waiting for adoption: filled by the source lane
  // during phase A, canonical seq stamped by the merge, drained by the
  // destination lane during phase C.
  struct CrossEntry {
    Tick time = 0;
    uint64_t seq = 0;
    EventFn fn;
  };

  // Per-worker barrier slot. The driver publishes a command by writing the
  // plain fields, then storing `go` (release); the worker acknowledges by
  // storing `done` (release) which the driver acquires — each window phase
  // is exactly one such epoch round-trip per lane.
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> go{0};    // lint:allow-nondeterminism — barrier handoff only.
    std::atomic<uint64_t> done{0};  // lint:allow-nondeterminism — barrier handoff only.
    int cmd = 0;  // 1 = RunWindow(window_end), 2 = post-phase, 3 = exit.
    Tick window_end = 0;
  };

  struct SafePoint {
    Tick t;
    uint64_t order;  // Insertion order: same-tick tasks run FIFO.
    std::function<void()> fn;  // lint:allow-churn — cold, driver-thread only.
  };

  void RunLoop(bool bounded, Tick until);
  void MergeWindow();
  void LoadMergeFront(int lane);
  void PostPhase(int lane);
  void RunLanePhase(int cmd, Tick window_end);
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(int lane);
  Tick GlobalMinEventTime();  // kNoEvent when every lane is idle.

  static constexpr Tick kNoEvent = ~Tick{0};

  Config config_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<int> lane_of_;      // NodeId -> lane.
  std::deque<Random> node_rng_;   // NodeId -> private stream (stable addrs).

  // Canonical single-lane sequence counter, advanced only by the merge and
  // by root-context scheduling — never concurrently.
  ROCKSTEADY_SHARED_GUARDED("canonical seq counter; merge/root contexts only, all lanes parked")
  uint64_t next_seq_ = 0;

  // Mailboxes, flattened [src * lanes + dst]. Cell (s, d) is written only by
  // lane s (phase A) and drained only by lane d (phase C); the phase-B
  // barrier orders the two, and the merge stamps seqs in between.
  ROCKSTEADY_SHARED_GUARDED("per-(src,dst) cell: src writes in phase A, dst drains in phase C, barrier between")
  std::vector<std::vector<CrossEntry>> mail_;

  // The current window's safe horizon, readable by every lane inside
  // phase A (published before the phase's go/done epoch).
  ROCKSTEADY_SHARED_GUARDED("written at the barrier before each window; read-only while lanes run")
  Tick window_end_ = 0;

  ROCKSTEADY_SHARED_GUARDED("driver publishes cmd pre-release-store; worker reads post-acquire-load")
  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  std::vector<std::thread> workers_;  // lint:allow-nondeterminism — persistent lane workers.
  bool workers_started_ = false;
  uint64_t barrier_epoch_ = 0;

  std::vector<SafePoint> safe_points_;  // Sorted by (t, order); bounded: drained every Run.
  uint64_t safe_point_order_ = 0;
  std::vector<size_t> merge_cursor_;  // Per-lane merge position (reused).
  // Each lane's current front, resolved once per cursor advance (a front's
  // (time, seq) never changes after the cursor reaches it). Exhausted lanes
  // hold the maximal (kNoEvent, ~0) pair so the min-scan skips them.
  std::vector<Tick> merge_front_time_;
  std::vector<uint64_t> merge_front_seq_;

  Tick now_ = 0;
  uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV offset basis.
  uint64_t windows_run_ = 0;

  PhaseHooks hooks_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_LANE_SET_H_
