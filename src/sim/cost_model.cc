#include "src/sim/cost_model.h"

namespace rocksteady {

void CostModel::Dilate(double factor) {
  auto scale_tick = [factor](Tick& t) { t = static_cast<Tick>(static_cast<double>(t) * factor); };
  auto scale_rate = [factor](double& r) { r *= factor; };

  net_bandwidth_bps /= factor;
  scale_tick(net_propagation_ns);
  scale_tick(net_per_message_ns);
  scale_tick(dispatch_per_rpc_ns);
  scale_tick(dispatch_tx_ns);
  scale_tick(dispatch_manager_ns);
  scale_tick(read_op_ns);
  scale_rate(read_per_byte_ns);
  scale_tick(write_op_ns);
  scale_rate(write_per_byte_ns);
  scale_tick(multiget_per_key_ns);
  scale_tick(index_lookup_ns);
  scale_tick(index_per_result_ns);
  scale_rate(replication_src_per_byte_ns);
  scale_tick(replication_src_base_ns);
  scale_rate(replication_pipeline_per_byte_ns);
  scale_tick(backup_write_base_ns);
  scale_rate(backup_write_per_byte_ns);
  scale_tick(pull_per_record_ns);
  scale_rate(pull_per_byte_ns);
  scale_tick(pull_base_ns);
  scale_tick(priority_pull_base_ns);
  scale_tick(priority_pull_per_record_ns);
  scale_tick(replay_per_record_ns);
  scale_rate(replay_per_byte_ns);
  scale_tick(replay_base_ns);
  scale_rate(baseline_scan_per_byte_ns);
  scale_rate(baseline_copy_per_byte_ns);
  scale_rate(baseline_tx_per_byte_ns);
  scale_rate(baseline_replay_per_byte_ns);
  scale_tick(cleaner_base_ns);
  scale_rate(cleaner_per_byte_ns);
  scale_tick(overload_retry_hint_ns);
  scale_tick(latency_window_ns);
  scale_tick(retry_backoff_min_ns);
  scale_tick(retry_backoff_max_ns);
  scale_tick(rpc_timeout_ns);
  scale_tick(migration_rpc_timeout_ns);
  scale_tick(recovering_retry_hint_ns);
  scale_tick(wrong_server_backoff_step_ns);
  scale_tick(wrong_server_backoff_max_ns);
  scale_tick(priority_pull_turnaround_ns);
  scale_tick(no_priority_pull_retry_ns);
  scale_tick(rpc_retransmit_base_ns);
  scale_tick(rpc_retransmit_cap_ns);
  scale_tick(rpc_retransmit_jitter_ns);
  scale_tick(rpc_dedup_retention_ns);
  scale_tick(migration_heartbeat_interval_ns);
  scale_tick(migration_lease_ns);
  scale_tick(ping_interval_ns);
  scale_tick(ping_timeout_ns);
}

}  // namespace rocksteady
