// Deterministic fault injection for the simulated fabric and cores.
//
// FoundationDB-style: all faults are drawn from a dedicated seeded RNG in
// deterministic event order, so a chaos run is a pure function of its seed —
// a failing seed replays bit-identically under a debugger. The injector is
// consulted by Network::Send (per-message drop / duplication / extra delay)
// and drives straggler and crash/restart schedules through callbacks the
// cluster installs. With no injector installed (the default), the fabric
// behaves exactly as before: zero drops, zero jitter.
//
// OnMessage is on the per-message hot path, so the link tables are flat
// open-addressed maps keyed on the packed (from, to) pair and the Decision
// is a fixed-size value (at most two copies exist) — no per-message
// allocation. The draw order is identical to the original std::map/vector
// implementation, so chaos trace hashes are unchanged.
#ifndef ROCKSTEADY_SRC_SIM_FAULT_INJECTOR_H_
#define ROCKSTEADY_SRC_SIM_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <deque>

#include "src/common/annotations.h"
#include "src/common/flat_map.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace rocksteady {

class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 1;
    // Per-message probabilities applied to every link unless overridden.
    double drop_probability = 0.0;       // Message vanishes in flight.
    double duplicate_probability = 0.0;  // Message delivered twice.
    // Uniform extra in-flight delay in [0, max_extra_delay_ns]; 0 = never.
    Tick max_extra_delay_ns = 0;
  };

  // What Network::Send should do with one message: deliver `copies` times
  // (0 = drop, at most 2 = original + duplicate), copy i delayed by
  // extra_delay_ns[i].
  struct Decision {
    int copies = 1;
    std::array<Tick, 2> extra_delay_ns{};
  };

  explicit FaultInjector(const Config& config) : config_(config), rng_(config.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Draws the fate of one message on link from->to. Called by Network::Send
  // in event order, which keeps the draw sequence deterministic.
  Decision OnMessage(uint32_t from, uint32_t to);

  // Lane mode: gives every sender its own seeded stream, so each draw
  // sequence depends only on that node's send order — which is lane-count-
  // and thread-invariant — instead of the global interleaving of sends.
  // Call once at setup. The one-shot DropNext/DuplicateNext helpers and
  // SetLinkOverride remain setup-time-only under lanes (their tables are
  // read-only while lanes run).
  void EnablePerSenderStreams(size_t num_nodes) {
    for (size_t node = sender_rng_.size(); node < num_nodes; node++) {
      sender_rng_.emplace_back(Mix64(config_.seed + 0x9E3779B97F4A7C15ull * (node + 1)));
    }
  }

  // Overrides the link-level probabilities for one directed link (regression
  // tests use this to lose exactly the response path of an RPC).
  void SetLinkOverride(uint32_t from, uint32_t to, double drop_probability,
                       double duplicate_probability) {
    link_overrides_[PackLink(from, to)] = {drop_probability, duplicate_probability};
  }
  void ClearLinkOverride(uint32_t from, uint32_t to) { link_overrides_.Erase(PackLink(from, to)); }

  // One-shot deterministic drop/duplicate of the next `n` messages on a
  // directed link, regardless of probabilities. Used by targeted tests.
  void DropNext(uint32_t from, uint32_t to, int n) { drop_next_[PackLink(from, to)] += n; }
  void DuplicateNext(uint32_t from, uint32_t to, int n) {
    duplicate_next_[PackLink(from, to)] += n;
  }

  const Config& config() const { return config_; }
  Random& rng() { return rng_; }

 private:
  struct LinkOverride {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
  };

  Config config_;
  Random rng_;  // Dedicated stream: fault draws never perturb workload RNG use.
  // Lane mode: per-sender streams (stable addresses; draws happen on the
  // sender's lane only). Empty in legacy mode — the shared rng_ is used.
  ROCKSTEADY_SHARED_GUARDED("per-sender slots; stream i drawn only from node i's lane")
  std::deque<Random> sender_rng_;
  ROCKSTEADY_SHARED_GUARDED("all lanes read on the send path; mutated only at setup (lanes parked)")
  FlatMap64<LinkOverride> link_overrides_;
  FlatMap64<int> drop_next_;
  FlatMap64<int> duplicate_next_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_FAULT_INJECTOR_H_
