// Deterministic fault injection for the simulated fabric and cores.
//
// FoundationDB-style: all faults are drawn from a dedicated seeded RNG in
// deterministic event order, so a chaos run is a pure function of its seed —
// a failing seed replays bit-identically under a debugger. The injector is
// consulted by Network::Send (per-message drop / duplication / extra delay)
// and drives straggler and crash/restart schedules through callbacks the
// cluster installs. With no injector installed (the default), the fabric
// behaves exactly as before: zero drops, zero jitter.
#ifndef ROCKSTEADY_SRC_SIM_FAULT_INJECTOR_H_
#define ROCKSTEADY_SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace rocksteady {

class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 1;
    // Per-message probabilities applied to every link unless overridden.
    double drop_probability = 0.0;       // Message vanishes in flight.
    double duplicate_probability = 0.0;  // Message delivered twice.
    // Uniform extra in-flight delay in [0, max_extra_delay_ns]; 0 = never.
    Tick max_extra_delay_ns = 0;
  };

  // What Network::Send should do with one message: deliver `copies` times
  // (0 = drop), each copy delayed by its own entry of `extra_delay_ns`.
  struct Decision {
    int copies = 1;
    std::vector<Tick> extra_delay_ns = {0};
  };

  explicit FaultInjector(const Config& config) : config_(config), rng_(config.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Draws the fate of one message on link from->to. Called by Network::Send
  // in event order, which keeps the draw sequence deterministic.
  Decision OnMessage(uint32_t from, uint32_t to);

  // Overrides the link-level probabilities for one directed link (regression
  // tests use this to lose exactly the response path of an RPC).
  void SetLinkOverride(uint32_t from, uint32_t to, double drop_probability,
                       double duplicate_probability) {
    link_overrides_[{from, to}] = {drop_probability, duplicate_probability};
  }
  void ClearLinkOverride(uint32_t from, uint32_t to) { link_overrides_.erase({from, to}); }

  // One-shot deterministic drop/duplicate of the next `n` messages on a
  // directed link, regardless of probabilities. Used by targeted tests.
  void DropNext(uint32_t from, uint32_t to, int n) { drop_next_[{from, to}] += n; }
  void DuplicateNext(uint32_t from, uint32_t to, int n) { duplicate_next_[{from, to}] += n; }

  const Config& config() const { return config_; }
  Random& rng() { return rng_; }

 private:
  struct LinkOverride {
    double drop_probability;
    double duplicate_probability;
  };

  Config config_;
  Random rng_;  // Dedicated stream: fault draws never perturb workload RNG use.
  std::map<std::pair<uint32_t, uint32_t>, LinkOverride> link_overrides_;
  std::map<std::pair<uint32_t, uint32_t>, int> drop_next_;
  std::map<std::pair<uint32_t, uint32_t>, int> duplicate_next_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_FAULT_INJECTOR_H_
