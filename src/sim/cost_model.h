// Calibrated service-time model for the simulated cluster.
//
// Every constant in the simulation lives here, next to the paper measurement
// it was calibrated against. The defaults reproduce (in shape and roughly in
// magnitude) the numbers in the paper's evaluation:
//   * ~6 us unloaded end-to-end reads, ~15 us durable writes      (Table 1 / §2)
//   * source pull logic ~5.7 GB/s and target replay ~3 GB/s at 16
//     cores for 128 B records; source/target ratio 1.8-2.4x       (Figure 15)
//   * baseline migration bottleneck ladder 130 / 180 / 600 / 710 /
//     1150 MB/s                                                   (Figure 5)
//   * log replication path saturating around ~380 MB/s            (§2.3)
//   * 40 Gbps (5 GB/s) links                                       (Table 1)
#ifndef ROCKSTEADY_SRC_SIM_COST_MODEL_H_
#define ROCKSTEADY_SRC_SIM_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace rocksteady {

struct CostModel {
  // --- Network (Table 1: Mellanox CX3 40 Gbps, DPDK kernel bypass). ---
  // Link bandwidth, bytes per second. 40 Gbps = 5 GB/s.
  double net_bandwidth_bps = 5.0e9;
  // One-way propagation + NIC/PHY latency. Calibrated so an unloaded
  // dispatch->dispatch round trip plus service lands near the paper's 6 us
  // end-to-end read.
  Tick net_propagation_ns = 1'000;
  // Fixed per-message NIC processing (descriptor handling, doorbell).
  Tick net_per_message_ns = 150;

  // --- Dispatch core (§3.1: one polling dispatch core per server). ---
  // Cost to poll, validate, and hand off one inbound RPC. Calibrated so one
  // server saturates around ~1M small RPCs/s (the paper's YCSB-B source
  // runs ~700 KOps/s at 80% dispatch load, §4.1/Figure 9).
  Tick dispatch_per_rpc_ns = 700;
  // Cost to post one outbound response to the transport.
  Tick dispatch_tx_ns = 300;
  // Migration-manager continuation on the target's dispatch core (§3.1.2:
  // "the migration manager runs as an asynchronous continuation on the
  // target's dispatch core"; §4.3: "requires little CPU").
  Tick dispatch_manager_ns = 120;

  // --- Worker ops (§2: 6 us reads, 15 us durable writes end to end). ---
  // Base worker time to service a read (hash lookup, copy-out, checksum).
  Tick read_op_ns = 1'700;
  // Per-byte copy-out cost for reads.
  double read_per_byte_ns = 0.5;
  // Base worker time for a write before replication (log append, hash
  // table update, index hooks).
  Tick write_op_ns = 2'200;
  double write_per_byte_ns = 1.0;
  // Additional per-key cost inside a multiget beyond the first key. A
  // multiget amortizes dispatch: one RPC, many lookups (Figure 3's premise:
  // worker-bound at spread 1, dispatch-bound at spread 7). Calibrated to
  // Figure 3's ~4M objects/s single-server plateau.
  Tick multiget_per_key_ns = 3'300;
  // Index lookup for short scans (Figure 4). Calibrated against Figure 4's
  // knee: one indexlet saturates around ~325K 4-record scans/s on 12
  // workers, implying ~20 us of per-scan index work (SLIK tree descent,
  // hash collection, response build).
  Tick index_lookup_ns = 20'000;
  Tick index_per_result_ns = 500;

  // --- Replication (§2.3: "RAMCloud's existing log replication mechanism
  //     bottlenecks at around 380 MB/s"). ---
  // Worker CPU to post a replication (checksum, build RPCs).
  double replication_src_per_byte_ns = 0.5;
  Tick replication_src_base_ns = 1'000;
  // The per-master replication *pipeline*: all of a master's replication
  // traffic serializes through this resource (RPC windows, copyset fan-out)
  // at 2.6 ns/B => ~380 MB/s, the paper's measured ceiling.
  double replication_pipeline_per_byte_ns = 2.6;
  // Backup-side worker cost to ingest a replica write.
  Tick backup_write_base_ns = 1'200;
  double backup_write_per_byte_ns = 0.5;

  // --- Rocksteady pulls (Figure 15 source curve: 5.7 GB/s @ 16 cores,
  //     128 B records => ~356 MB/s/core => ~358 ns/record). ---
  Tick pull_per_record_ns = 320;
  double pull_per_byte_ns = 0.30;
  // Fixed source-side cost per Pull RPC (locate partition cursor, build
  // gather list header).
  Tick pull_base_ns = 900;
  // PriorityPull: per-batch fixed + per-record hash-table probe cost.
  Tick priority_pull_base_ns = 700;
  Tick priority_pull_per_record_ns = 400;

  // --- Replay (Figure 15 target curve: 3 GB/s @ 16 cores, 128 B records
  //     => ~187 MB/s/core => ~670 ns/record; ratio vs. source 1.8-2.4x). ---
  Tick replay_per_record_ns = 600;
  double replay_per_byte_ns = 0.55;
  Tick replay_base_ns = 800;

  // --- Baseline (pre-existing RAMCloud) migration (Figure 5 ladder). ---
  // Source-side log scan: identify live objects to migrate.
  // 0.87 ns per *matched* byte plus a small per-entry skip cost
  // => ~1150 MB/s of migrated data ("Skip Copy for Tx").
  double baseline_scan_per_byte_ns = 0.87;
  Tick baseline_scan_per_skipped_entry_ns = 8;
  // Copying identified objects into staging buffers: +0.54 ns/B
  // (1150 -> 710 MB/s, "Skip Tx to Target").
  double baseline_copy_per_byte_ns = 0.54;
  // Posting staged buffers to the transport: +0.26 ns/B (710 -> 600 MB/s,
  // "Skip Replay on Target").
  double baseline_tx_per_byte_ns = 0.26;
  // Target-side single-threaded logical replay: 5.3 ns/B => ~188 MB/s
  // ("Skip Re-replication" plateau ~180 MB/s).
  double baseline_replay_per_byte_ns = 5.3;

  // --- Log cleaner (emergency cleaning under memory pressure). ---
  // Worker cost to clean one segment: fixed scan/selection overhead plus a
  // per-relocated-byte copy cost (same order as replay, it is the same kind
  // of log-append work).
  Tick cleaner_base_ns = 2'000;
  double cleaner_per_byte_ns = 0.6;

  // --- Overload protection. ---
  // Retry hint returned with a kRetryLater pull rejection: how long the
  // target should wait before re-issuing the shed pull.
  Tick overload_retry_hint_ns = 50'000;
  // Windowing for each master's recent client-latency tracker (the p99.9
  // signal piggybacked on pull replies): sub-window span and count.
  Tick latency_window_ns = 500'000;
  size_t latency_window_buckets = 4;

  // --- Client behaviour / protocol timing. ---
  // Paper §3: on kRetryLater the client retries "after randomly waiting a
  // few tens of microseconds".
  Tick retry_backoff_min_ns = 10'000;
  Tick retry_backoff_max_ns = 40'000;
  // Data RPC timeout (crash detection) and migration-control RPC timeout.
  Tick rpc_timeout_ns = 5 * kMillisecond;
  Tick migration_rpc_timeout_ns = 20 * kMillisecond;
  // Retry hint for reads hitting a tablet still being recovered.
  Tick recovering_retry_hint_ns = kMillisecond;
  // Escalating client backoff on repeated kWrongServer.
  Tick wrong_server_backoff_step_ns = 20'000;
  Tick wrong_server_backoff_max_ns = 500'000;
  // Expected PriorityPull batch turnaround (client retry hint, §3.3).
  Tick priority_pull_turnaround_ns = 25'000;
  // Retry hint when PriorityPulls are disabled (Figure 9b mode): the client
  // can only wait for background Pulls, so the hint is long — aggressive
  // retries would melt the target's dispatch core for nothing.
  Tick no_priority_pull_retry_ns = 1'000'000;

  // --- At-least-once RPC transport (fault-injection hardening). ---
  // Per-attempt retransmission timer: an unacked attempt is retransmitted
  // with the *same* call_id after base * 2^attempt (capped) plus seeded
  // jitter; the caller-visible timeout above is the overall deadline.
  Tick rpc_retransmit_base_ns = 100'000;
  Tick rpc_retransmit_cap_ns = 2'000'000;
  // Max jitter added to each retransmission delay (uniform, seeded).
  Tick rpc_retransmit_jitter_ns = 20'000;
  // How long a server remembers completed call_ids for duplicate
  // suppression. Must exceed the longest client retransmission interval.
  Tick rpc_dedup_retention_ns = 100 * kMillisecond;
  // Migration-manager heartbeat to the coordinator, and the lease the
  // coordinator grants: miss a whole lease and the migration is considered
  // stalled (crashed target) and is re-driven through recovery.
  Tick migration_heartbeat_interval_ns = 2 * kMillisecond;
  Tick migration_lease_ns = 50 * kMillisecond;
  // Coordinator ping-based failure detector (chaos runs): period between
  // ping sweeps and the per-ping timeout that declares a server dead.
  Tick ping_interval_ns = 10 * kMillisecond;
  Tick ping_timeout_ns = 5 * kMillisecond;

  // Scales every simulated time cost by `factor` (and bandwidth down by
  // it). Pure unit scaling: utilizations, queueing shapes, and relative
  // results are unchanged, but experiments need `factor`x fewer simulated
  // events per simulated second of the undilated system. Experiment
  // drivers report times divided by the factor and rates multiplied by it.
  void Dilate(double factor);

  // Derived helpers. -----------------------------------------------------
  Tick Serialization(size_t bytes) const {
    return static_cast<Tick>(static_cast<double>(bytes) / net_bandwidth_bps * 1e9);
  }
  Tick ReadCost(size_t value_bytes) const {
    return read_op_ns + static_cast<Tick>(read_per_byte_ns * static_cast<double>(value_bytes));
  }
  Tick WriteCost(size_t value_bytes) const {
    return write_op_ns + static_cast<Tick>(write_per_byte_ns * static_cast<double>(value_bytes));
  }
  Tick PullCost(size_t records, size_t bytes) const {
    return pull_base_ns + pull_per_record_ns * static_cast<Tick>(records) +
           static_cast<Tick>(pull_per_byte_ns * static_cast<double>(bytes));
  }
  Tick ReplayCost(size_t records, size_t bytes) const {
    return replay_base_ns + replay_per_record_ns * static_cast<Tick>(records) +
           static_cast<Tick>(replay_per_byte_ns * static_cast<double>(bytes));
  }
  Tick PriorityPullCost(size_t records) const {
    return priority_pull_base_ns + priority_pull_per_record_ns * static_cast<Tick>(records);
  }
  Tick ReplicationSrcCost(size_t bytes) const {
    return replication_src_base_ns +
           static_cast<Tick>(replication_src_per_byte_ns * static_cast<double>(bytes));
  }
  Tick BackupWriteCost(size_t bytes) const {
    return backup_write_base_ns +
           static_cast<Tick>(backup_write_per_byte_ns * static_cast<double>(bytes));
  }
  Tick CleanSegmentCost(size_t relocated_bytes) const {
    return cleaner_base_ns +
           static_cast<Tick>(cleaner_per_byte_ns * static_cast<double>(relocated_bytes));
  }
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_COST_MODEL_H_
