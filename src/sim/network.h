// Simulated data-center fabric.
//
// Models each node's egress NIC as a serial link with finite bandwidth plus a
// fixed one-way propagation delay (Table 1: 40 Gbps links through one
// switch). Message payloads never serialize for real — the RPC layer moves
// C++ objects — but every message charges serialization time for its declared
// wire size, which is what creates the bandwidth ceilings the paper measures
// (line rate 5 GB/s; migration contending with client traffic).
//
// Packet interleaving: a real kernel-bypass transport sends MTU-sized frames,
// so a microsecond-scale response never waits behind a whole 256 KB bulk
// transfer (§2.4: Rocksteady "incorporates into RAMCloud's transport layer to
// minimize jitter caused by background migration transfers"). The model
// approximates this with two egress tracks per node: small messages (under
// kBulkThresholdBytes) serialize on their own track and only ever wait for
// other small messages; bulk messages queue FIFO among themselves. The model
// error (small traffic's bandwidth is not deducted from bulk) is a few
// percent at the paper's traffic mix.
//
// Hot path: delivery callbacks are inline (NetFn), the per-message fault
// Decision is a fixed-size value, and the rare duplicated/delayed fan-out
// shares one pooled, intrusively-refcounted delivery node instead of a
// make_shared'd std::function — a Send allocates nothing.
#ifndef ROCKSTEADY_SRC_SIM_NETWORK_H_
#define ROCKSTEADY_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/inline_function.h"
#include "src/sim/cost_model.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

namespace rocksteady {

using NodeId = uint32_t;

// Delivery callbacks store up to 64 capture bytes inline; the simulator
// event wrapping one ({this, to, NetFn}) then fills EventFn's 88 exactly.
inline constexpr size_t kNetInlineCallbackBytes = 64;
using NetFn = InlineFunction<void(), kNetInlineCallbackBytes>;

class Network {
 public:
  Network(Simulator* sim, const CostModel* costs) : sim_(sim), costs_(costs) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  static constexpr size_t kBulkThresholdBytes = 4096;

  NodeId AddNode() {
    egress_free_at_.push_back(0);
    egress_bulk_free_at_.push_back(0);
    node_down_.push_back(false);
    return static_cast<NodeId>(egress_free_at_.size() - 1);
  }
  size_t NumNodes() const { return egress_free_at_.size(); }

  // Delivers `on_delivery` at the destination after egress serialization of
  // `wire_bytes` plus propagation. Messages from one node share its egress
  // link (FIFO). Messages to or from a down node are dropped. The callback
  // may be invoked more than once if the fabric duplicates the message, so
  // it must not consume one-shot state on invocation (the RPC layer's
  // delivery closures copy shared handles or null-check moved state).
  void Send(NodeId from, NodeId to, size_t wire_bytes, NetFn on_delivery);

  // Crash simulation: messages in flight to a down node are dropped at
  // delivery time; messages from it are not sent.
  void SetNodeDown(NodeId node, bool down) { node_down_[node] = down; }
  bool IsNodeDown(NodeId node) const { return node_down_[node]; }

  // Installs (or removes, with nullptr) a fault injector consulted on every
  // Send. Not owned; must outlive the network while installed.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_ = injector;
    faults_ever_installed_ = faults_ever_installed_ || injector != nullptr;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // True once any injector has ever been installed. Duplicates injected
  // before an injector was removed can still be in flight after removal, so
  // "no injector now" is not "no duplicates ever" — layers that want to skip
  // duplicate-defense work must check this, not fault_injector().
  bool faults_ever_installed() const { return faults_ever_installed_; }

  uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  uint64_t total_messages() const { return total_messages_; }

  // Loss accounting: nothing vanishes silently. Down-node drops are the
  // crash model doing its job; injected_* only move when an injector is
  // installed. Experiment summaries print these so a lossy run is visibly
  // lossy.
  uint64_t dropped_from_down_node() const { return dropped_from_down_node_; }
  uint64_t dropped_to_down_node() const { return dropped_to_down_node_; }
  uint64_t injected_drops() const { return injected_drops_; }
  uint64_t injected_duplicates() const { return injected_duplicates_; }
  uint64_t injected_delays() const { return injected_delays_; }

 private:
  // One fault-path fan-out: up to two delivery copies share the callback.
  // Nodes are pooled and reused; all storage is owned by shared_storage_ so
  // teardown is clean even with copies still scheduled.
  struct SharedDelivery {
    NetFn fn;
    int refs = 0;
    SharedDelivery* next_free = nullptr;
  };

  SharedDelivery* AllocShared();
  void ReleaseShared(SharedDelivery* shared);

  Simulator* sim_;
  const CostModel* costs_;
  std::vector<Tick> egress_free_at_;       // Small-message track.
  std::vector<Tick> egress_bulk_free_at_;  // Bulk track (>= threshold).
  std::vector<bool> node_down_;
  FaultInjector* fault_injector_ = nullptr;
  bool faults_ever_installed_ = false;
  std::vector<std::unique_ptr<SharedDelivery>> shared_storage_;
  SharedDelivery* shared_free_ = nullptr;
  uint64_t total_bytes_sent_ = 0;
  uint64_t total_messages_ = 0;
  uint64_t dropped_from_down_node_ = 0;
  uint64_t dropped_to_down_node_ = 0;
  uint64_t injected_drops_ = 0;
  uint64_t injected_duplicates_ = 0;
  uint64_t injected_delays_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_NETWORK_H_
