// Simulated data-center fabric.
//
// Models each node's egress NIC as a serial link with finite bandwidth plus a
// fixed one-way propagation delay (Table 1: 40 Gbps links through one
// switch). Message payloads never serialize for real — the RPC layer moves
// C++ objects — but every message charges serialization time for its declared
// wire size, which is what creates the bandwidth ceilings the paper measures
// (line rate 5 GB/s; migration contending with client traffic).
//
// Packet interleaving: a real kernel-bypass transport sends MTU-sized frames,
// so a microsecond-scale response never waits behind a whole 256 KB bulk
// transfer (§2.4: Rocksteady "incorporates into RAMCloud's transport layer to
// minimize jitter caused by background migration transfers"). The model
// approximates this with two egress tracks per node: small messages (under
// kBulkThresholdBytes) serialize on their own track and only ever wait for
// other small messages; bulk messages queue FIFO among themselves. The model
// error (small traffic's bandwidth is not deducted from bulk) is a few
// percent at the paper's traffic mix.
//
// Hot path: delivery callbacks are inline (NetFn), the per-message fault
// Decision is a fixed-size value, and the rare duplicated/delayed fan-out
// shares one pooled, intrusively-refcounted delivery node instead of a
// make_shared'd std::function — a Send allocates nothing.
#ifndef ROCKSTEADY_SRC_SIM_NETWORK_H_
#define ROCKSTEADY_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/inline_function.h"
#include "src/sim/cost_model.h"
#include "src/sim/fault_injector.h"
#include "src/sim/lane_set.h"
#include "src/sim/simulator.h"

namespace rocksteady {

using NodeId = uint32_t;

// Delivery callbacks store up to 64 capture bytes inline; the simulator
// event wrapping one ({this, to, NetFn}) then fills EventFn's 88 exactly.
inline constexpr size_t kNetInlineCallbackBytes = 64;
using NetFn = InlineFunction<void(), kNetInlineCallbackBytes>;

class Network {
 public:
  Network(Simulator* sim, const CostModel* costs) : sim_(sim), costs_(costs) {
    counters_.resize(1);
    pools_.resize(1);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  static constexpr size_t kBulkThresholdBytes = 4096;

  // Lane mode: sends execute on the sender's lane, deliveries on the
  // receiver's. Cross-lane deliveries route through the LaneSet mailboxes;
  // counters and the fault-path delivery pool become per-lane so the hot
  // path never touches another lane's cache line. Call once at setup,
  // before any Send.
  void SetLanes(LaneSet* lanes) {
    lanes_ = lanes;
    counters_.assign(static_cast<size_t>(lanes->lanes()), Counters{});
    pools_.resize(static_cast<size_t>(lanes->lanes()));
  }

  NodeId AddNode() {
    egress_free_at_.push_back(0);
    egress_bulk_free_at_.push_back(0);
    node_down_.push_back(false);
    return static_cast<NodeId>(egress_free_at_.size() - 1);
  }
  size_t NumNodes() const { return egress_free_at_.size(); }

  // Delivers `on_delivery` at the destination after egress serialization of
  // `wire_bytes` plus propagation. Messages from one node share its egress
  // link (FIFO). Messages to or from a down node are dropped. The callback
  // may be invoked more than once if the fabric duplicates the message, so
  // it must not consume one-shot state on invocation (the RPC layer's
  // delivery closures copy shared handles or null-check moved state).
  void Send(NodeId from, NodeId to, size_t wire_bytes, NetFn on_delivery);

  // Crash simulation: messages in flight to a down node are dropped at
  // delivery time; messages from it are not sent. In lane mode this must be
  // called from a safe point (all lanes parked) — every lane reads the flag.
  void SetNodeDown(NodeId node, bool down) { node_down_[node] = down; }
  bool IsNodeDown(NodeId node) const { return node_down_[node]; }

  // Installs (or removes, with nullptr) a fault injector consulted on every
  // Send. Not owned; must outlive the network while installed.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_ = injector;
    faults_ever_installed_ = faults_ever_installed_ || injector != nullptr;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // True once any injector has ever been installed. Duplicates injected
  // before an injector was removed can still be in flight after removal, so
  // "no injector now" is not "no duplicates ever" — layers that want to skip
  // duplicate-defense work must check this, not fault_injector().
  bool faults_ever_installed() const { return faults_ever_installed_; }

  // Counter accessors sum the per-lane shards (one shard in legacy mode).
  uint64_t total_bytes_sent() const { return SumCounter(&Counters::total_bytes_sent); }
  uint64_t total_messages() const { return SumCounter(&Counters::total_messages); }

  // Loss accounting: nothing vanishes silently. Down-node drops are the
  // crash model doing its job; injected_* only move when an injector is
  // installed. Experiment summaries print these so a lossy run is visibly
  // lossy.
  uint64_t dropped_from_down_node() const {
    return SumCounter(&Counters::dropped_from_down_node);
  }
  uint64_t dropped_to_down_node() const { return SumCounter(&Counters::dropped_to_down_node); }
  uint64_t injected_drops() const { return SumCounter(&Counters::injected_drops); }
  uint64_t injected_duplicates() const { return SumCounter(&Counters::injected_duplicates); }
  uint64_t injected_delays() const { return SumCounter(&Counters::injected_delays); }

 private:
  // One fault-path fan-out: up to two delivery copies share the callback.
  // Nodes are pooled and reused; all storage is owned by the pool so
  // teardown is clean even with copies still scheduled.
  struct SharedDelivery {
    NetFn fn;
    int refs = 0;
    SharedDelivery* next_free = nullptr;
  };

  // Send-side statistics, sharded per lane (cache-line spaced so lanes never
  // false-share); legacy mode uses shard 0 only.
  struct alignas(64) Counters {
    uint64_t total_bytes_sent = 0;
    uint64_t total_messages = 0;
    uint64_t dropped_from_down_node = 0;
    uint64_t dropped_to_down_node = 0;
    uint64_t injected_drops = 0;
    uint64_t injected_duplicates = 0;
    uint64_t injected_delays = 0;
  };

  struct LanePool {
    std::vector<std::unique_ptr<SharedDelivery>> storage;
    SharedDelivery* free_list = nullptr;
  };

  // The lane a node's events execute on: counter/pool shard index.
  size_t LaneOf(NodeId node) const {
    return lanes_ != nullptr ? static_cast<size_t>(lanes_->lane_of(node)) : 0;
  }
  uint64_t SumCounter(uint64_t Counters::* field) const {
    uint64_t total = 0;
    for (const Counters& shard : counters_) {
      total += shard.*field;
    }
    return total;
  }

  SharedDelivery* AllocShared(size_t pool);
  void ReleaseShared(size_t pool, SharedDelivery* shared);
  // Schedules a delivery event: same-lane (and legacy) through the source
  // simulator, cross-lane through the LaneSet mailbox.
  void ScheduleDelivery(Simulator* src, NodeId to, Tick arrive, EventFn ev);

  Simulator* sim_;
  const CostModel* costs_;
  LaneSet* lanes_ = nullptr;  // Null in legacy single-queue mode.

  // Per-node slots: only the owning node's lane ever touches index i.
  ROCKSTEADY_SHARED_GUARDED("per-node egress slots; only node i's lane reads/writes index i")
  std::vector<Tick> egress_free_at_;       // Small-message track.
  ROCKSTEADY_SHARED_GUARDED("per-node egress slots; only node i's lane reads/writes index i")
  std::vector<Tick> egress_bulk_free_at_;  // Bulk track (>= threshold).

  // Read by every lane on each delivery; written only at setup or from a
  // LaneSet safe point, when all lanes are parked.
  ROCKSTEADY_SHARED_GUARDED("all lanes read; writes only at setup or safe points (lanes parked)")
  std::vector<bool> node_down_;

  FaultInjector* fault_injector_ = nullptr;
  bool faults_ever_installed_ = false;

  // Fault-path delivery nodes, pooled per lane: a node is allocated on the
  // sender's lane and released into the *receiver's* lane's pool (the last
  // delivery copy runs there). Cells are only ever touched by their own lane.
  ROCKSTEADY_SHARED_GUARDED("per-lane free lists; each touched only by its owning lane")
  std::vector<LanePool> pools_;

  ROCKSTEADY_SHARED_GUARDED("per-lane shards; each written only by its owning lane, summed when idle")
  std::vector<Counters> counters_;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_SRC_SIM_NETWORK_H_
