#include "src/sim/fault_injector.h"

namespace rocksteady {

FaultInjector::Decision FaultInjector::OnMessage(uint32_t from, uint32_t to) {
  const std::pair<uint32_t, uint32_t> link{from, to};

  double drop_p = config_.drop_probability;
  double dup_p = config_.duplicate_probability;
  if (auto it = link_overrides_.find(link); it != link_overrides_.end()) {
    drop_p = it->second.drop_probability;
    dup_p = it->second.duplicate_probability;
  }

  Decision decision;
  if (auto it = drop_next_.find(link); it != drop_next_.end() && it->second > 0) {
    if (--it->second == 0) {
      drop_next_.erase(it);
    }
    decision.copies = 0;
    decision.extra_delay_ns.clear();
    return decision;
  }
  bool forced_dup = false;
  if (auto it = duplicate_next_.find(link); it != duplicate_next_.end() && it->second > 0) {
    if (--it->second == 0) {
      duplicate_next_.erase(it);
    }
    forced_dup = true;
  }

  // One probability draw per configured hazard, in fixed order, so the draw
  // sequence (and thus the whole run) is a pure function of the seed.
  if (drop_p > 0.0 && rng_.NextDouble() < drop_p) {
    decision.copies = 0;
    decision.extra_delay_ns.clear();
    return decision;
  }
  if (forced_dup || (dup_p > 0.0 && rng_.NextDouble() < dup_p)) {
    decision.copies = 2;
    decision.extra_delay_ns.push_back(0);
  }
  if (config_.max_extra_delay_ns > 0) {
    for (auto& delay : decision.extra_delay_ns) {
      delay = rng_.Uniform(config_.max_extra_delay_ns + 1);
    }
  }
  return decision;
}

}  // namespace rocksteady
