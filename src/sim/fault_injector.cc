#include "src/sim/fault_injector.h"

namespace rocksteady {

FaultInjector::Decision FaultInjector::OnMessage(uint32_t from, uint32_t to) {
  const uint64_t link = PackLink(from, to);

  double drop_p = config_.drop_probability;
  double dup_p = config_.duplicate_probability;
  if (const LinkOverride* override = link_overrides_.Find(link); override != nullptr) {
    drop_p = override->drop_probability;
    dup_p = override->duplicate_probability;
  }

  Random& rng = sender_rng_.empty() ? rng_ : sender_rng_[from];

  Decision decision;
  if (int* remaining = drop_next_.Find(link); remaining != nullptr && *remaining > 0) {
    if (--*remaining == 0) {
      drop_next_.Erase(link);
    }
    decision.copies = 0;
    return decision;
  }
  bool forced_dup = false;
  if (int* remaining = duplicate_next_.Find(link); remaining != nullptr && *remaining > 0) {
    if (--*remaining == 0) {
      duplicate_next_.Erase(link);
    }
    forced_dup = true;
  }

  // One probability draw per configured hazard, in fixed order, so the draw
  // sequence (and thus the whole run) is a pure function of the seed.
  if (drop_p > 0.0 && rng.NextDouble() < drop_p) {
    decision.copies = 0;
    return decision;
  }
  if (forced_dup || (dup_p > 0.0 && rng.NextDouble() < dup_p)) {
    decision.copies = 2;
  }
  if (config_.max_extra_delay_ns > 0) {
    for (int i = 0; i < decision.copies; i++) {
      decision.extra_delay_ns[static_cast<size_t>(i)] =
          rng.Uniform(config_.max_extra_delay_ns + 1);
    }
  }
  return decision;
}

}  // namespace rocksteady
