#!/usr/bin/env bash
# CI gate: determinism lint, then two full build+test passes —
#  1. RelWithDebInfo with -Werror and ASan+UBSan,
#  2. Debug with -Werror and ROCKSTEADY_AUDIT=ON (DCHECKs + invariant audits
#     enabled, death tests active).
# Run from anywhere; builds land in build-asan/ and build-audit/ under the
# repo root. Any failure aborts with a nonzero exit.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n=== %s ===\n' "$*"; }

step "determinism lint"
python3 "${ROOT}/tools/lint_determinism.py" "${ROOT}/src"

step "build: ASan+UBSan (RelWithDebInfo, -Werror)"
cmake -B "${ROOT}/build-asan" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DROCKSTEADY_WERROR=ON \
  -DROCKSTEADY_SANITIZE="address;undefined"
cmake --build "${ROOT}/build-asan" -j "${JOBS}"

step "test: ASan+UBSan"
ctest --test-dir "${ROOT}/build-asan" --output-on-failure -j "${JOBS}"

step "chaos suite: lossy fabric + crash-restarts, 20 seeds, replayed bit-identically"
"${ROOT}/build-asan/tests/chaos_test" --gtest_filter='Seeds/ChaosTest.*'

step "overload chaos: bursty load past saturation + migration, pacing on/off, 20 seeds"
"${ROOT}/build-asan/tests/chaos_test" --gtest_filter='Seeds/OverloadChaosTest.*'

step "rebalancer chaos: planner + splits + faults, 20 seeds, replayed bit-identically"
"${ROOT}/build-asan/tests/rebalance_test" --gtest_filter='Seeds/RebalanceChaosTest.*'

step "overload protection: admission control, load shedding, memory budget"
"${ROOT}/build-asan/tests/overload_test"

step "rpc dedup cache stays bounded"
"${ROOT}/build-asan/tests/rpc_test" --gtest_filter='*Dedup*'

step "engine bench smoke (~2s; fails only if the bench crashes)"
# Compare against the recorded trajectory without mutating it: the smoke
# entry lands in a scratch copy, so CI stays read-only on BENCH_engine.json
# while still warning if a smoke trace_hash diverges from the recorded one.
cp "${ROOT}/BENCH_engine.json" "${ROOT}/build-asan/BENCH_smoke.json" 2>/dev/null || true
python3 "${ROOT}/tools/bench_baseline.py" --build-dir "${ROOT}/build-asan" \
  --smoke --label ci_smoke --output "${ROOT}/build-asan/BENCH_smoke.json"

step "build: debug audit (Debug, -Werror, ROCKSTEADY_AUDIT=ON)"
cmake -B "${ROOT}/build-audit" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DROCKSTEADY_WERROR=ON \
  -DROCKSTEADY_AUDIT=ON
cmake --build "${ROOT}/build-audit" -j "${JOBS}"

step "test: debug audit"
ctest --test-dir "${ROOT}/build-audit" --output-on-failure -j "${JOBS}"

step "all checks passed"
