#!/usr/bin/env bash
# CI gate: static analysis, then three build+test passes —
#  1. RelWithDebInfo with -Werror and ASan+UBSan (full suite + chaos runs),
#  2. Debug with -Werror and ROCKSTEADY_AUDIT=ON (DCHECKs + invariant audits
#     enabled, death tests active),
#  3. RelWithDebInfo with TSan (fast subset: the determinism core plus the
#     threaded-lane suite, which drives real worker threads through the
#     lane barriers — the sharded-execution race gate).
# Run from anywhere; builds land in build-asan/, build-audit/ and
# build-tsan/ under the repo root. Any failure aborts with a nonzero exit.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n=== %s ===\n' "$*"; }

step "static analysis: shard-safety + determinism gates (hard gate)"
# Semantic rules (tools/analyzer/) plus the regex determinism lint in one
# pass; the baseline ships empty, so any finding fails CI.
python3 "${ROOT}/tools/analyze.py" "${ROOT}/src" --build-dir "${ROOT}/build-asan"

step "analyzer fixture tests"
python3 "${ROOT}/tests/analyzer/run_fixture_tests.py"

step "build: ASan+UBSan (RelWithDebInfo, -Werror)"
cmake -B "${ROOT}/build-asan" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DROCKSTEADY_WERROR=ON \
  -DROCKSTEADY_SANITIZE="address;undefined"
cmake --build "${ROOT}/build-asan" -j "${JOBS}"

step "clang-tidy over changed files (when clang-tidy is installed)"
# Curated check set from .clang-tidy (bugprone/performance/concurrency),
# driven by the exported compile_commands.json. Scope: files changed by the
# last commit plus the working tree, falling back to all of src/ when the
# diff cannot be computed (fresh clone without history).
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t changed < <(cd "${ROOT}" && {
      git diff --name-only HEAD~1 -- 'src/*.cc' 'src/*.h' 2>/dev/null ||
      git ls-files 'src/*.cc' 'src/*.h'
    } | sort -u)
  tidy_files=()
  for f in "${changed[@]}"; do
    if [[ -f "${ROOT}/${f}" && "${f}" == *.cc ]]; then
      tidy_files+=("${ROOT}/${f}")
    fi
  done
  if ((${#tidy_files[@]})); then
    clang-tidy -p "${ROOT}/build-asan" --quiet "${tidy_files[@]}"
  else
    echo "no changed src/ translation units to tidy"
  fi
else
  echo "clang-tidy not installed; skipping (tools/analyze.py already ran)"
fi

step "test: ASan+UBSan"
ctest --test-dir "${ROOT}/build-asan" --output-on-failure -j "${JOBS}"

step "chaos suite: lossy fabric + crash-restarts, 20 seeds, replayed bit-identically"
"${ROOT}/build-asan/tests/chaos_test" --gtest_filter='Seeds/ChaosTest.*'

step "overload chaos: bursty load past saturation + migration, pacing on/off, 20 seeds"
"${ROOT}/build-asan/tests/chaos_test" --gtest_filter='Seeds/OverloadChaosTest.*'

step "rebalancer chaos: planner + splits + faults, 20 seeds, replayed bit-identically"
"${ROOT}/build-asan/tests/rebalance_test" --gtest_filter='Seeds/RebalanceChaosTest.*'

step "scenario matrix smoke: every operational scenario at seed 0 (20-seed suites run in ctest)"
"${ROOT}/build-asan/tests/scenario_test" --gtest_filter='*_s0'

step "overload protection: admission control, load shedding, memory budget"
"${ROOT}/build-asan/tests/overload_test"

step "rpc dedup cache stays bounded"
"${ROOT}/build-asan/tests/rpc_test" --gtest_filter='*Dedup*'

step "threaded lanes: 4-lane worker-thread runs match the single-lane schedule"
# The full 20-seed x {ycsb, migration, faults} suite runs under ctest; this
# leg re-runs a slice with ASan explicitly so a lane/barrier memory bug
# cannot hide behind a ctest filter change.
"${ROOT}/build-asan/tests/lane_determinism_test" \
  --gtest_filter='*_s10:*_s11:*_s12:*_s13:LaneTieBreakTest.*'

step "engine bench smoke (~2s; trace-hash divergence is a hard failure)"
# Compare against the recorded trajectory without mutating it: the smoke
# entry lands in a scratch copy, so CI stays read-only on BENCH_engine.json.
# The recorded trajectory must exist — without it the smoke compares against
# nothing and the determinism check silently passes.
if [[ ! -f "${ROOT}/BENCH_engine.json" ]]; then
  echo "ERROR: ${ROOT}/BENCH_engine.json missing — the bench smoke needs the" \
       "recorded trajectory to compare trace hashes against" >&2
  exit 1
fi
cp "${ROOT}/BENCH_engine.json" "${ROOT}/build-asan/BENCH_smoke.json"
python3 "${ROOT}/tools/bench_baseline.py" --build-dir "${ROOT}/build-asan" \
  --smoke --strict-hash --label ci_smoke \
  --output "${ROOT}/build-asan/BENCH_smoke.json"

step "build: debug audit (Debug, -Werror, ROCKSTEADY_AUDIT=ON)"
cmake -B "${ROOT}/build-audit" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DROCKSTEADY_WERROR=ON \
  -DROCKSTEADY_AUDIT=ON
cmake --build "${ROOT}/build-audit" -j "${JOBS}"

step "test: debug audit"
ctest --test-dir "${ROOT}/build-audit" --output-on-failure -j "${JOBS}"

step "build: TSan (RelWithDebInfo, -Werror)"
cmake -B "${ROOT}/build-tsan" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DROCKSTEADY_WERROR=ON \
  -DROCKSTEADY_SANITIZE=thread
cmake --build "${ROOT}/build-tsan" -j "${JOBS}"

step "test: TSan fast subset (determinism core + threaded lane barriers)"
"${ROOT}/build-tsan/tests/sim_determinism_test"
"${ROOT}/build-tsan/tests/rpc_test"
# The multi-lane suite under TSan is the race gate for sharded execution:
# every parameterized case runs 4 threaded lanes through the window/merge
# barriers. A subset of seeds keeps the leg fast; ctest runs all 20.
"${ROOT}/build-tsan/tests/lane_determinism_test" \
  --gtest_filter='*_s0:*_s1:*_s2:*_s3:*_s4:*_s5:*_s6:*_s7:LaneTieBreakTest.*'

step "all checks passed"
