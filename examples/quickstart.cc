// Quickstart: single-node storage engine usage (log + hash table through
// ObjectManager). The cluster-level quickstart lives in
// examples/live_migration.cc once the full stack is involved.
#include <cstdio>
#include <string>

#include "src/common/hash.h"
#include "src/store/object_manager.h"

int main() {
  using namespace rocksteady;

  ObjectManager store;

  // Write a few objects.
  for (int i = 0; i < 5; i++) {
    const std::string key = "user:" + std::to_string(i);
    const std::string value = "profile-data-" + std::to_string(i);
    auto version = store.Write(/*table=*/1, key, HashKey(key), value);
    std::printf("wrote %-8s version=%llu\n", key.c_str(),
                static_cast<unsigned long long>(*version));
  }

  // Read them back.
  for (int i = 0; i < 5; i++) {
    const std::string key = "user:" + std::to_string(i);
    auto read = store.Read(1, key, HashKey(key));
    std::printf("read  %-8s -> %.*s\n", key.c_str(), static_cast<int>(read->value.size()),
                read->value.data());
  }

  // Overwrite and delete.
  store.Write(1, "user:0", HashKey("user:0"), "updated");
  store.Remove(1, "user:1", HashKey("user:1"));
  std::printf("after update: user:0 -> %.*s\n",
              static_cast<int>(store.Read(1, "user:0", HashKey("user:0"))->value.size()),
              store.Read(1, "user:0", HashKey("user:0"))->value.data());
  std::printf("after delete: user:1 status=%s\n",
              std::string(ToString(store.Read(1, "user:1", HashKey("user:1")).status())).c_str());

  std::printf("log: %llu segments, %llu live bytes\n",
              static_cast<unsigned long long>(store.log().segments().size()),
              static_cast<unsigned long long>(store.log().live_bytes()));
  return 0;
}
