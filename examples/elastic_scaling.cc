// Elastic scale-up and scale-down — the cluster-reconfiguration story from
// the paper's introduction ("facilitates cluster scale-up, scale-down, and
// load rebalancing"). One hot server is progressively relieved by migrating
// quarters of its table to two other servers, then the data is consolidated
// back (scale-down), all under load, with per-phase latency printed.
#include <cstdio>
#include <optional>

#include "src/cluster/cluster.h"
#include "src/migration/rocksteady_target.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"

namespace {

using namespace rocksteady;

constexpr TableId kTable = 1;
constexpr uint64_t kRecords = 200'000;
constexpr KeyHash kQuarter = 1ull << 62;

void PrintPhase(Cluster& cluster, const char* phase) {
  std::printf("%-44s owners of quarters: [", phase);
  for (int q = 0; q < 4; q++) {
    const ServerId owner =
        cluster.coordinator().OwnerOf(kTable, static_cast<KeyHash>(q) * kQuarter + 1);
    std::printf("%s%u", q == 0 ? "" : " ", owner);
  }
  std::printf("]  dispatch busy/s: ");
  for (size_t s = 0; s < cluster.num_masters(); s++) {
    std::printf("%.2f ", static_cast<double>(cluster.master(s).cores().total_dispatch_busy()) /
                             static_cast<double>(cluster.sim().now() + 1));
    cluster.master(s).cores().ResetBusyCounters();
  }
  std::printf("\n");
}

// Migrates [start, end] and blocks (in simulated time) until it completes.
void MigrateAndWait(Cluster& cluster, KeyHash start, KeyHash end, size_t source,
                    size_t target) {
  std::optional<MigrationStats> stats;
  StartRocksteadyMigration(&cluster, kTable, start, end, source, target, RocksteadyOptions{},
                           [&](const MigrationStats& s) { stats = s; });
  Tick deadline = cluster.sim().now() + 30 * kSecond;
  while (!stats.has_value() && cluster.sim().now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().now() + kMillisecond);
  }
  if (!stats.has_value()) {
    std::printf("  migration did not complete (bug)\n");
    return;
  }
  std::printf("  migrated %.1f MB at %.0f MB/s\n",
              static_cast<double>(stats->bytes_pulled) / 1e6, stats->RateMBps());
}

}  // namespace

int main() {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  // Background load for the entire exercise.
  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);
  LatencyTimeline reads(kSecond / 4, 40);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 300'000;
  actor_config.max_outstanding = 64;
  actor_config.stop_time = 6 * kSecond;
  ClientActor actor(kTable, &cluster.client(0), &workload, actor_config);
  actor.set_read_latency(&reads);
  actor.Start();

  cluster.sim().RunUntil(kSecond / 2);
  PrintPhase(cluster, "start: everything on server 1");

  // --- Scale up: spread the table across three servers. ---
  MigrateAndWait(cluster, 2 * kQuarter, 3 * kQuarter - 1, 0, 1);
  MigrateAndWait(cluster, 3 * kQuarter, ~0ull, 0, 2);
  cluster.sim().RunUntil(cluster.sim().now() + kSecond / 2);
  PrintPhase(cluster, "scaled up: servers 1,2,3 share the table");

  // --- Rebalance: move one quarter between the new servers. ---
  MigrateAndWait(cluster, 2 * kQuarter, 3 * kQuarter - 1, 1, 2);
  cluster.sim().RunUntil(cluster.sim().now() + kSecond / 2);
  PrintPhase(cluster, "rebalanced: server 3 carries the upper half");

  // --- Scale down: consolidate everything back onto server 1, one tablet
  // at a time (migration operates on single tablets; a span of two tablets
  // is two migrations). ---
  MigrateAndWait(cluster, 2 * kQuarter, 3 * kQuarter - 1, 2, 0);
  MigrateAndWait(cluster, 3 * kQuarter, ~0ull, 2, 0);
  cluster.sim().RunUntil(cluster.sim().now() + kSecond / 2);
  PrintPhase(cluster, "scaled down: whole table back on server 1");

  cluster.sim().Run();
  std::printf("\nread latency through four live reconfigurations:\n");
  const Histogram totals = reads.Total();
  std::printf("  ops=%llu median=%.1f us  99.9th=%.1f us  max window p999=%.1f us\n",
              static_cast<unsigned long long>(totals.count()),
              static_cast<double>(totals.Percentile(0.5)) / 1e3,
              static_cast<double>(totals.Percentile(0.999)) / 1e3,
              [&] {
                double worst = 0;
                for (size_t w = 0; w < reads.NumWindows(); w++) {
                  worst = std::max(worst, static_cast<double>(reads.Percentile(w, 0.999)));
                }
                return worst / 1e3;
              }());
  std::printf("no pauses, no downtime: reconfiguration is a routine operation.\n");
  return 0;
}
