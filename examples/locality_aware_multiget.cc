// Access locality and multigets: why Rocksteady's fine-grained migration
// matters (the §2.1 motivation). The same 7-key multigets cost the cluster
// ~N RPCs when the keys live on N servers; co-locating correlated keys
// multiplies effective cluster capacity.
#include <cstdio>

#include "bench/experiment_common.h"

int main() {
  using namespace rocksteady;

  constexpr TableId kTable = 1;
  constexpr int kServers = 4;
  constexpr uint64_t kRecords = 20'000;

  Cluster cluster(MakeConfig(kServers, 2, 1.0));
  cluster.CreateTable(kTable, 0);
  SpreadTableAcross(cluster, kTable, kServers);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  // Group loaded keys by owning server.
  std::vector<std::vector<std::string>> pools(kServers);
  for (uint64_t i = 0; i < kRecords; i++) {
    std::string key = Cluster::MakeKey(i, 30);
    pools[cluster.coordinator().OwnerOf(kTable, HashKey(key)) - 1].push_back(std::move(key));
  }
  cluster.client(0).Read(kTable, pools[0][0], [](Status, const std::string&) {});
  cluster.sim().Run();

  std::printf("%8s %22s %26s\n", "spread", "Mobjects/s (total)", "RPCs issued per multiget");
  for (int spread = 1; spread <= kServers; spread++) {
    uint64_t objects = 0;
    MultiGetLoop loop(&cluster, &cluster.client(0), kTable, &pools, spread, 7, &objects);
    const uint64_t calls_before = cluster.rpc().calls_issued();
    const Tick t0 = cluster.sim().now();
    loop.Run(/*concurrency=*/192);
    cluster.sim().RunUntil(t0 + kSecond / 20);
    const double seconds = static_cast<double>(cluster.sim().now() - t0) / 1e9;
    const double rpcs_per_get =
        static_cast<double>(cluster.rpc().calls_issued() - calls_before) /
        (static_cast<double>(objects) / 7.0);
    std::printf("%8d %22.2f %26.1f\n", spread, static_cast<double>(objects) / seconds / 1e6,
                rpcs_per_get);
    // Stop this configuration's loop and let in-flight multigets drain.
    loop.Stop();
    cluster.sim().Run();
  }
  std::printf("\nco-locating access-correlated keys on one server multiplies cluster\n"
              "capacity -- the reason Rocksteady migrates at arbitrary boundaries.\n");
  return 0;
}
