// Live migration end to end: build a simulated RAMCloud cluster, load a
// table, drive YCSB-B load against it, and live-migrate half the table with
// Rocksteady while the workload runs — then verify every record.
//
// This is the paper's headline scenario (Figures 9-11a) as a minimal
// program against the public API.
#include <cstdio>
#include <optional>

#include "src/cluster/cluster.h"
#include "src/migration/rocksteady_target.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"

int main() {
  using namespace rocksteady;

  constexpr TableId kTable = 1;
  constexpr KeyHash kMid = 1ull << 63;
  constexpr uint64_t kRecords = 100'000;

  // A 4-server cluster (each server is master + backup) plus 2 clients.
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  Cluster cluster(config);
  EnableMigration(&cluster);

  // Create and load the table; it lives entirely on master 0.
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);
  std::printf("loaded %llu records (%.1f MB of log) onto master 0\n",
              static_cast<unsigned long long>(kRecords),
              static_cast<double>(cluster.master(0).objects().log().total_bytes()) / 1e6);

  // Drive YCSB-B (95/5, Zipfian 0.99) against the table.
  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);
  LatencyTimeline reads(kSecond / 10, 20);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = 200'000;
  actor_config.max_outstanding = 64;
  actor_config.stop_time = 2 * kSecond;
  ClientActor actor(kTable, &cluster.client(0), &workload, actor_config);
  actor.set_read_latency(&reads);
  actor.Start();

  // At t = 0.5 s, live-migrate the upper half of the hash space to master 1.
  std::optional<MigrationStats> stats;
  cluster.sim().At(kSecond / 2, [&] {
    std::printf("t=0.5s: starting Rocksteady migration of the upper half...\n");
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, /*source=*/0, /*target=*/1,
                             RocksteadyOptions{},
                             [&](const MigrationStats& s) { stats = s; });
  });

  cluster.sim().Run();

  if (stats.has_value()) {
    std::printf("migration done: %.1f MB in %.3f s (%.0f MB/s), %llu pulls, "
                "%llu PriorityPull batches\n",
                static_cast<double>(stats->bytes_pulled) / 1e6, stats->DurationSeconds(),
                stats->RateMBps(), static_cast<unsigned long long>(stats->pulls_completed),
                static_cast<unsigned long long>(stats->priority_pull_batches));
  }
  std::printf("workload: %llu ops completed, %llu failed\n",
              static_cast<unsigned long long>(actor.completed()),
              static_cast<unsigned long long>(actor.failed()));
  const Histogram totals = reads.Total();
  std::printf("read latency: median %.1f us, 99.9th %.1f us\n",
              static_cast<double>(totals.Percentile(0.5)) / 1e3,
              static_cast<double>(totals.Percentile(0.999)) / 1e3);

  // Verify every record is still readable with the right contents.
  int ok = 0;
  for (uint64_t i = 0; i < kRecords; i += 997) {
    cluster.client(1).Read(kTable, Cluster::MakeKey(i, 30),
                           [&](Status status, const std::string& value) {
                             // Loaded records hold 'v's; the 5% YCSB writes
                             // overwrote some with 'w's — both are intact.
                             ok += (status == Status::kOk &&
                                    (value == std::string(100, 'v') ||
                                     value == std::string(100, 'w')));
                           });
  }
  cluster.sim().Run();
  std::printf("spot check after migration: %d/%d records intact\n", ok,
              static_cast<int>((kRecords + 996) / 997));
  std::printf("ownership of upper half now at master id %u (master 1 is id %u)\n",
              cluster.coordinator().OwnerOf(kTable, kMid), cluster.master(1).id());
  return 0;
}
