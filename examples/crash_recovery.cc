// Fault tolerance during migration: crash the migration *target* mid-flight
// and watch lineage-based recovery (§3.4) put everything back together.
//
// Ownership of the migrating tablet moved to the target at migration start,
// and the target accepted writes — but its side logs were never replicated
// (that is the point of lineage: no synchronous re-replication). On the
// crash, ownership snaps back to the source, whose copy is complete, and
// the source replays only the *tail* of the target's recovery log (the
// writes the target serviced) from the backups.
#include <cstdio>
#include <map>

#include "src/cluster/cluster.h"
#include "src/migration/rocksteady_target.h"

int main() {
  using namespace rocksteady;

  constexpr TableId kTable = 1;
  constexpr KeyHash kMid = 1ull << 63;
  constexpr uint64_t kRecords = 50'000;

  ClusterConfig config;
  config.num_masters = 5;
  config.num_clients = 2;
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  bool migration_done = false;
  StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                           [&](const MigrationStats&) { migration_done = true; });

  // While the migration runs, write fresh values to migrating keys: they are
  // serviced by the *target* (immediate ownership transfer).
  std::map<std::string, std::string> fresh;
  cluster.sim().RunUntil(100 * kMicrosecond);
  for (uint64_t i = 0; i < kRecords && fresh.size() < 25; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    if (HashKey(key) >= kMid) {
      fresh[key] = "updated-at-target-" + std::to_string(i);
      cluster.client(0).Write(kTable, key, fresh[key], [](Status) {});
    }
  }
  cluster.sim().RunUntil(400 * kMicrosecond);
  std::printf("migration in flight (done=%d), dependencies registered: %zu\n",
              migration_done, cluster.coordinator().dependencies().size());

  // Crash the target mid-migration and run coordinated recovery.
  std::printf("crashing the migration target (master 1)...\n");
  cluster.master(1).Crash();
  bool recovered = false;
  cluster.coordinator().HandleCrash(cluster.master(1).id(), [&] { recovered = true; });
  cluster.sim().Run();
  std::printf("recovery complete: %d\n", recovered);

  // Ownership returned to the source.
  std::printf("upper half owned by master id %u (source is id %u)\n",
              cluster.coordinator().OwnerOf(kTable, kMid), cluster.master(0).id());

  // Every record — including the writes the dead target serviced — survives.
  int intact = 0;
  int checked = 0;
  for (uint64_t i = 0; i < kRecords; i += 487) {
    const std::string key = Cluster::MakeKey(i, 30);
    const std::string expected = fresh.count(key) ? fresh[key] : std::string(100, 'v');
    checked++;
    cluster.client(0).Read(kTable, key, [&, expected](Status status, const std::string& value) {
      intact += (status == Status::kOk && value == expected);
    });
  }
  int fresh_ok = 0;
  for (const auto& [key, expected] : fresh) {
    cluster.client(1).Read(kTable, key, [&, e = expected](Status status, const std::string& v) {
      fresh_ok += (status == Status::kOk && v == e);
    });
  }
  cluster.sim().Run();
  std::printf("spot check: %d/%d records intact\n", intact, checked);
  std::printf("writes serviced by the crashed target: %d/%zu recovered via lineage\n", fresh_ok,
              fresh.size());
  return 0;
}
