// Wall-clock throughput of the simulation engine itself.
//
// Every figure in this reproduction is bounded by how many simulated events
// per second the single-threaded engine dispatches, so this driver measures
// exactly that — no paper metric, just engine speed — across three
// scenarios of increasing realism:
//
//   dispatch        self-rescheduling timer chains: pure queue + callback
//                   overhead, zero application work.
//   ycsb_b          steady-state YCSB-B against 4 masters (full RPC stack,
//                   dispatch/worker cores, no migration).
//   ycsb_migration  YCSB-B with a Rocksteady migration of half the table
//                   mid-run — the acceptance scenario for engine PRs.
//
// Output is one JSON object per line, parsed by tools/bench_baseline.py into
// BENCH_engine.json. Each line carries the run's trace_hash so that engine
// optimizations can be checked for bit-identical schedules against the
// recorded baseline (determinism is non-negotiable; see DESIGN.md).
//
// Wall-clock timing is deliberate and allowed here: bench/ is outside the
// determinism lint's scope, and the measured time never feeds back into
// simulation state.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>

#include "bench/experiment_common.h"
#include "src/common/inline_function.h"
#include "src/migration/rocksteady_target.h"
#include "tests/alloc_hook.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;

struct ScenarioResult {
  size_t events = 0;
  double wall_s = 0;
  Tick sim_ns = 0;
  uint64_t trace_hash = 0;
  uint64_t allocs = 0;
  uint64_t fn_fallbacks = 0;  // InlineFunction closures that heap-boxed.
  // Lane scenarios only: the critical-path model from an unthreaded 4-lane
  // run (this container has one CPU, so threaded wall-clock measures
  // scheduler contention, not parallel speedup — see EXPERIMENTS.md).
  int lanes = 0;
  double model_parallel_wall_s = 0;  // Sum over windows of (max lane busy + merge).
  double model_speedup = 0;          // Single-lane wall / model_parallel_wall_s.
};

void Report(const char* scenario, uint64_t seed, const ScenarioResult& r) {
  const double events_per_s = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  const double allocs_per_event =
      r.events > 0 ? static_cast<double>(r.allocs) / static_cast<double>(r.events) : 0;
  std::printf(
      "{\"scenario\":\"%s\",\"seed\":%" PRIu64 ",\"events\":%zu,\"wall_s\":%.6f,"
      "\"events_per_s\":%.0f,\"sim_s\":%.6f,\"trace_hash\":\"0x%016" PRIx64 "\","
      "\"allocs\":%" PRIu64 ",\"allocs_per_event\":%.3f,\"fn_fallbacks\":%" PRIu64,
      scenario, seed, r.events, r.wall_s, events_per_s,
      static_cast<double>(r.sim_ns) / 1e9, r.trace_hash, r.allocs, allocs_per_event,
      r.fn_fallbacks);
  if (r.lanes > 0) {
    std::printf(",\"lanes\":%d,\"model_parallel_wall_s\":%.6f,\"model_events_per_s\":%.0f,"
                "\"model_speedup\":%.2f",
                r.lanes, r.model_parallel_wall_s,
                r.model_parallel_wall_s > 0
                    ? static_cast<double>(r.events) / r.model_parallel_wall_s
                    : 0,
                r.model_speedup);
  }
  std::printf("}\n");
  std::fflush(stdout);
}

// Critical-path accumulator for unthreaded lane runs: with LaneSet's
// PhaseHooks it times each lane's window slice and the sequential merge,
// and models a perfectly parallel execution as sum over windows of
// (max lane busy + merge) — the schedule's actual critical path, free of
// this container's single-CPU thread contention.
class CriticalPathModel {
 public:
  void Install(LaneSet* lanes) {
    LaneSet::PhaseHooks hooks;
    hooks.lane_begin = [this](int) { mark_ = std::chrono::steady_clock::now(); };
    hooks.lane_end = [this](int) { window_max_s_ = std::max(window_max_s_, Lap()); };
    hooks.merge_begin = [this]() { mark_ = std::chrono::steady_clock::now(); };
    hooks.merge_end = [this]() {
      critical_s_ += window_max_s_ + Lap();
      window_max_s_ = 0;
    };
    lanes->set_phase_hooks(std::move(hooks));
  }

  double critical_s() const { return critical_s_; }

 private:
  double Lap() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - mark_).count();
  }

  std::chrono::steady_clock::time_point mark_;
  double window_max_s_ = 0;
  double critical_s_ = 0;
};

// Times `run` (the event loop only — setup is excluded) and snapshots the
// global allocation counter around it.
template <typename F>
void Measure(F&& run, ScenarioResult* result) {
  const uint64_t allocs_before = GlobalAllocCount();
  const uint64_t fallbacks_before = InlineFunctionHeapFallbacks();
  const auto start = std::chrono::steady_clock::now();
  run();
  const auto end = std::chrono::steady_clock::now();
  result->wall_s = std::chrono::duration<double>(end - start).count();
  result->allocs = GlobalAllocCount() - allocs_before;
  result->fn_fallbacks = InlineFunctionHeapFallbacks() - fallbacks_before;
}

// --- dispatch: K self-rescheduling chains, period 100 ns. ---

class Chain {
 public:
  Chain(Simulator* sim, Tick period, Tick stop) : sim_(sim), period_(period), stop_(stop) {}

  void Start(Tick at) {
    sim_->At(at, [this] { Step(); });
  }

 private:
  void Step() {
    const Tick next = sim_->now() + period_;
    if (next <= stop_) {
      sim_->At(next, [this] { Step(); });
    }
  }

  Simulator* sim_;
  Tick period_;
  Tick stop_;
};

ScenarioResult RunDispatch(uint64_t seed, bool smoke) {
  constexpr int kChains = 32;
  constexpr Tick kPeriod = 100;
  const Tick stop = smoke ? kMillisecond : 10 * kMillisecond;

  Simulator sim(seed);
  std::vector<std::unique_ptr<Chain>> chains;
  for (int i = 0; i < kChains; i++) {
    chains.push_back(std::make_unique<Chain>(&sim, kPeriod, stop));
    chains.back()->Start(static_cast<Tick>(i));  // Staggered starts.
  }
  ScenarioResult result;
  Measure([&] { sim.Run(); }, &result);
  result.events = sim.events_processed();
  result.sim_ns = sim.now();
  result.trace_hash = sim.trace_hash();
  return result;
}

// --- dispatch_lanes: the dispatch load sharded across event lanes. ---

ScenarioResult RunDispatchLanes(uint64_t seed, bool smoke, int lanes, bool threads,
                                CriticalPathModel* model = nullptr) {
  constexpr int kChains = 32;
  constexpr Tick kPeriod = 100;
  const Tick stop = smoke ? kMillisecond : 10 * kMillisecond;

  LaneSet::Config lane_config;
  lane_config.lanes = lanes;
  lane_config.threads = threads;
  lane_config.lookahead = 1'150;  // The cluster's cross-lane horizon.
  lane_config.seed = seed;
  LaneSet set(lane_config);
  if (model != nullptr) {
    model->Install(&set);
  }
  std::vector<std::unique_ptr<Chain>> chains;
  for (int i = 0; i < kChains; i++) {
    chains.push_back(std::make_unique<Chain>(&set.lane_sim(i % lanes), kPeriod, stop));
    chains.back()->Start(static_cast<Tick>(i));  // Staggered starts.
  }
  ScenarioResult result;
  Measure([&] { set.Run(); }, &result);
  result.events = set.events_processed();
  result.sim_ns = set.now();
  result.trace_hash = set.trace_hash();
  return result;
}

// --- ycsb_b / ycsb_migration: the full stack. ---

struct ClusterScenario {
  uint64_t records = 20'000;
  double ops_per_second = 75'000;  // Per client, two clients.
  Tick stop_time = 0;
  std::optional<Tick> migrate_at;  // Upper half of the table, master 0 -> 1.
  bool spread = false;             // Spread the table across all masters.
  int masters = 4;
  int clients = 2;
  int lanes = 0;                   // > 0: sharded execution on that many lanes.
  bool lane_threads = false;
};

ScenarioResult RunCluster(uint64_t seed, const ClusterScenario& scenario,
                          CriticalPathModel* model = nullptr) {
  ClusterConfig config;
  config.num_masters = scenario.masters;
  config.num_clients = scenario.clients;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 15;
  config.master.segment_size = 256 * 1024;
  config.lanes = scenario.lanes;
  config.lane_threads = scenario.lane_threads;
  Cluster cluster(config);
  if (model != nullptr) {
    model->Install(cluster.lanes());
  }
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  if (scenario.spread) {
    SpreadTableAcross(cluster, kTable, config.num_masters);
  }
  // Key length 12 keeps client-side keys inside std::string's SSO buffer so
  // the bench measures engine churn, not key-copy malloc traffic.
  cluster.LoadTable(kTable, scenario.records, 12, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = scenario.records;
  ClientActorConfig actor_config;
  actor_config.ops_per_second = scenario.ops_per_second;
  actor_config.stop_time = scenario.stop_time;
  std::vector<std::unique_ptr<YcsbWorkload>> workloads;
  std::vector<std::unique_ptr<ClientActor>> actors;
  for (int c = 0; c < scenario.clients; c++) {
    workloads.push_back(std::make_unique<YcsbWorkload>(ycsb));
    actors.push_back(std::make_unique<ClientActor>(kTable, &cluster.client(static_cast<size_t>(c)),
                                                   workloads.back().get(), actor_config));
    actors.back()->Start();
  }

  std::optional<MigrationStats> stats;
  if (scenario.migrate_at.has_value()) {
    if (scenario.lanes > 0) {
      // Lane mode: cross-cutting control actions go through safe points.
      cluster.AtSafePoint(*scenario.migrate_at, [&] {
        StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                                 [&](const MigrationStats& s) { stats = s; });
      });
    } else {
      cluster.sim().At(*scenario.migrate_at, [&] {
        StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                                 [&](const MigrationStats& s) { stats = s; });
      });
    }
  }

  ScenarioResult result;
  const size_t events_before = cluster.events_processed();
  Measure([&] { cluster.Run(); }, &result);
  result.events = cluster.events_processed() - events_before;
  result.sim_ns = cluster.now();
  result.trace_hash = cluster.trace_hash();
  if (scenario.migrate_at.has_value() && !stats.has_value()) {
    std::fprintf(stderr, "engine_throughput: migration did not complete (seed %" PRIu64 ")\n",
                 seed);
    std::exit(1);
  }
  uint64_t completed = 0;
  for (const auto& actor : actors) {
    completed += actor->completed();
  }
  if (completed == 0) {
    std::fprintf(stderr, "engine_throughput: no client ops completed (seed %" PRIu64 ")\n", seed);
    std::exit(1);
  }
  return result;
}

// Runs a lane scenario's three configurations — single-lane reference,
// 4-lane unthreaded (for the critical-path model), 4-lane threaded (the
// reported run) — and dies if any trace hash diverges: identical schedules
// across lane counts and threading is the sharded engine's contract.
template <typename RunFn>
ScenarioResult RunLaneChecked(const char* scenario, RunFn&& run) {
  const ScenarioResult lane1 = run(1, false, nullptr);
  CriticalPathModel model;
  const ScenarioResult lane4 = run(4, false, &model);
  ScenarioResult threaded = run(4, true, nullptr);
  if (lane1.trace_hash != lane4.trace_hash || lane1.trace_hash != threaded.trace_hash) {
    std::fprintf(stderr,
                 "engine_throughput: %s trace hashes diverged across lane configs "
                 "(lanes1 0x%016" PRIx64 ", lanes4 0x%016" PRIx64 ", threaded 0x%016" PRIx64 ")\n",
                 scenario, lane1.trace_hash, lane4.trace_hash, threaded.trace_hash);
    std::exit(1);
  }
  threaded.lanes = 4;
  threaded.model_parallel_wall_s = model.critical_s();
  threaded.model_speedup =
      model.critical_s() > 0 ? lane1.wall_s / model.critical_s() : 0;
  return threaded;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  Report("dispatch", 42, RunDispatch(42, smoke));

  Report("dispatch_lanes", 42,
         RunLaneChecked("dispatch_lanes", [&](int lanes, bool threads, CriticalPathModel* model) {
           return RunDispatchLanes(42, smoke, lanes, threads, model);
         }));

  ClusterScenario steady;
  steady.spread = true;
  steady.records = smoke ? 4'000 : 20'000;
  steady.stop_time = smoke ? 20 * kMillisecond : 100 * kMillisecond;
  Report("ycsb_b", 42, RunCluster(42, steady));

  ClusterScenario migration;
  migration.spread = false;  // Whole table on master 0; migrate half to 1.
  migration.records = smoke ? 4'000 : 20'000;
  migration.stop_time = smoke ? 30 * kMillisecond : 120 * kMillisecond;
  migration.migrate_at = smoke ? 10 * kMillisecond : 20 * kMillisecond;
  Report("ycsb_migration", 42, RunCluster(42, migration));
  if (!smoke) {
    Report("ycsb_migration", 7, RunCluster(7, migration));
  }

  Report("ycsb_migration_lanes", 42,
         RunLaneChecked("ycsb_migration_lanes",
                        [&](int lanes, bool threads, CriticalPathModel* model) {
                          ClusterScenario s = migration;
                          s.lanes = lanes;
                          s.lane_threads = threads;
                          return RunCluster(42, s, model);
                        }));

  if (!smoke) {
    // The paper-shape scaling point: 24 masters (Figure 15's cluster size)
    // under spread YCSB-B load, sharded across 4 lanes. The model_speedup
    // field is the acceptance number for parallel lane execution.
    ClusterScenario fig15;
    fig15.spread = true;
    fig15.masters = 24;
    fig15.clients = 8;
    fig15.records = 48'000;
    fig15.ops_per_second = 800'000;  // 6.4M ops/s aggregate keeps lanes busy.
    fig15.stop_time = 60 * kMillisecond;
    Report("fig15_24srv_lanes", 42,
           RunLaneChecked("fig15_24srv_lanes",
                          [&](int lanes, bool threads, CriticalPathModel* model) {
                            ClusterScenario s = fig15;
                            s.lanes = lanes;
                            s.lane_threads = threads;
                            return RunCluster(42, s, model);
                          }));
  }
  return 0;
}

}  // namespace
}  // namespace rocksteady

int main(int argc, char** argv) { return rocksteady::Main(argc, argv); }
