// Wall-clock throughput of the simulation engine itself.
//
// Every figure in this reproduction is bounded by how many simulated events
// per second the single-threaded engine dispatches, so this driver measures
// exactly that — no paper metric, just engine speed — across three
// scenarios of increasing realism:
//
//   dispatch        self-rescheduling timer chains: pure queue + callback
//                   overhead, zero application work.
//   ycsb_b          steady-state YCSB-B against 4 masters (full RPC stack,
//                   dispatch/worker cores, no migration).
//   ycsb_migration  YCSB-B with a Rocksteady migration of half the table
//                   mid-run — the acceptance scenario for engine PRs.
//
// Output is one JSON object per line, parsed by tools/bench_baseline.py into
// BENCH_engine.json. Each line carries the run's trace_hash so that engine
// optimizations can be checked for bit-identical schedules against the
// recorded baseline (determinism is non-negotiable; see DESIGN.md).
//
// Wall-clock timing is deliberate and allowed here: bench/ is outside the
// determinism lint's scope, and the measured time never feeds back into
// simulation state.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>

#include "bench/experiment_common.h"
#include "src/common/inline_function.h"
#include "src/migration/rocksteady_target.h"
#include "tests/alloc_hook.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;

struct ScenarioResult {
  size_t events = 0;
  double wall_s = 0;
  Tick sim_ns = 0;
  uint64_t trace_hash = 0;
  uint64_t allocs = 0;
  uint64_t fn_fallbacks = 0;  // InlineFunction closures that heap-boxed.
};

void Report(const char* scenario, uint64_t seed, const ScenarioResult& r) {
  const double events_per_s = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  const double allocs_per_event =
      r.events > 0 ? static_cast<double>(r.allocs) / static_cast<double>(r.events) : 0;
  std::printf(
      "{\"scenario\":\"%s\",\"seed\":%" PRIu64 ",\"events\":%zu,\"wall_s\":%.6f,"
      "\"events_per_s\":%.0f,\"sim_s\":%.6f,\"trace_hash\":\"0x%016" PRIx64 "\","
      "\"allocs\":%" PRIu64 ",\"allocs_per_event\":%.3f,\"fn_fallbacks\":%" PRIu64 "}\n",
      scenario, seed, r.events, r.wall_s, events_per_s,
      static_cast<double>(r.sim_ns) / 1e9, r.trace_hash, r.allocs, allocs_per_event,
      r.fn_fallbacks);
  std::fflush(stdout);
}

// Times `run` (the event loop only — setup is excluded) and snapshots the
// global allocation counter around it.
template <typename F>
void Measure(F&& run, ScenarioResult* result) {
  const uint64_t allocs_before = GlobalAllocCount();
  const uint64_t fallbacks_before = InlineFunctionHeapFallbacks();
  const auto start = std::chrono::steady_clock::now();
  run();
  const auto end = std::chrono::steady_clock::now();
  result->wall_s = std::chrono::duration<double>(end - start).count();
  result->allocs = GlobalAllocCount() - allocs_before;
  result->fn_fallbacks = InlineFunctionHeapFallbacks() - fallbacks_before;
}

// --- dispatch: K self-rescheduling chains, period 100 ns. ---

class Chain {
 public:
  Chain(Simulator* sim, Tick period, Tick stop) : sim_(sim), period_(period), stop_(stop) {}

  void Start(Tick at) {
    sim_->At(at, [this] { Step(); });
  }

 private:
  void Step() {
    const Tick next = sim_->now() + period_;
    if (next <= stop_) {
      sim_->At(next, [this] { Step(); });
    }
  }

  Simulator* sim_;
  Tick period_;
  Tick stop_;
};

ScenarioResult RunDispatch(uint64_t seed, bool smoke) {
  constexpr int kChains = 32;
  constexpr Tick kPeriod = 100;
  const Tick stop = smoke ? kMillisecond : 10 * kMillisecond;

  Simulator sim(seed);
  std::vector<std::unique_ptr<Chain>> chains;
  for (int i = 0; i < kChains; i++) {
    chains.push_back(std::make_unique<Chain>(&sim, kPeriod, stop));
    chains.back()->Start(static_cast<Tick>(i));  // Staggered starts.
  }
  ScenarioResult result;
  Measure([&] { sim.Run(); }, &result);
  result.events = sim.events_processed();
  result.sim_ns = sim.now();
  result.trace_hash = sim.trace_hash();
  return result;
}

// --- ycsb_b / ycsb_migration: the full stack. ---

struct ClusterScenario {
  uint64_t records = 20'000;
  double ops_per_second = 75'000;  // Per client, two clients.
  Tick stop_time = 0;
  std::optional<Tick> migrate_at;  // Upper half of the table, master 0 -> 1.
  bool spread = false;             // Spread the table across all masters.
};

ScenarioResult RunCluster(uint64_t seed, const ClusterScenario& scenario) {
  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 15;
  config.master.segment_size = 256 * 1024;
  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  if (scenario.spread) {
    SpreadTableAcross(cluster, kTable, config.num_masters);
  }
  // Key length 12 keeps client-side keys inside std::string's SSO buffer so
  // the bench measures engine churn, not key-copy malloc traffic.
  cluster.LoadTable(kTable, scenario.records, 12, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = scenario.records;
  YcsbWorkload workload_a(ycsb);
  YcsbWorkload workload_b(ycsb);
  ClientActorConfig actor_config;
  actor_config.ops_per_second = scenario.ops_per_second;
  actor_config.stop_time = scenario.stop_time;
  ClientActor actor_a(kTable, &cluster.client(0), &workload_a, actor_config);
  ClientActor actor_b(kTable, &cluster.client(1), &workload_b, actor_config);
  actor_a.Start();
  actor_b.Start();

  std::optional<MigrationStats> stats;
  if (scenario.migrate_at.has_value()) {
    cluster.sim().At(*scenario.migrate_at, [&] {
      StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                               [&](const MigrationStats& s) { stats = s; });
    });
  }

  ScenarioResult result;
  const size_t events_before = cluster.sim().events_processed();
  Measure([&] { cluster.sim().Run(); }, &result);
  result.events = cluster.sim().events_processed() - events_before;
  result.sim_ns = cluster.sim().now();
  result.trace_hash = cluster.sim().trace_hash();
  if (scenario.migrate_at.has_value() && !stats.has_value()) {
    std::fprintf(stderr, "engine_throughput: migration did not complete (seed %" PRIu64 ")\n",
                 seed);
    std::exit(1);
  }
  if (actor_a.completed() + actor_b.completed() == 0) {
    std::fprintf(stderr, "engine_throughput: no client ops completed (seed %" PRIu64 ")\n", seed);
    std::exit(1);
  }
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  Report("dispatch", 42, RunDispatch(42, smoke));

  ClusterScenario steady;
  steady.spread = true;
  steady.records = smoke ? 4'000 : 20'000;
  steady.stop_time = smoke ? 20 * kMillisecond : 100 * kMillisecond;
  Report("ycsb_b", 42, RunCluster(42, steady));

  ClusterScenario migration;
  migration.spread = false;  // Whole table on master 0; migrate half to 1.
  migration.records = smoke ? 4'000 : 20'000;
  migration.stop_time = smoke ? 30 * kMillisecond : 120 * kMillisecond;
  migration.migrate_at = smoke ? 10 * kMillisecond : 20 * kMillisecond;
  Report("ycsb_migration", 42, RunCluster(42, migration));
  if (!smoke) {
    Report("ycsb_migration", 7, RunCluster(7, migration));
  }
  return 0;
}

}  // namespace
}  // namespace rocksteady

int main(int argc, char** argv) { return rocksteady::Main(argc, argv); }
