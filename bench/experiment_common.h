// Shared helpers for the figure/table reproduction drivers.
//
// Time dilation: several experiments hold a server at 80% dispatch load for
// tens of (simulated) seconds; simulating that at full fidelity costs ~10^9
// events. CostModel::Dilate(D) scales every cost by D — pure unit scaling
// (identical utilizations and queueing shapes) — and drivers report times
// divided by D and rates multiplied by D. Each driver prints its D.
#ifndef ROCKSTEADY_BENCH_EXPERIMENT_COMMON_H_
#define ROCKSTEADY_BENCH_EXPERIMENT_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/timeseries.h"
#include "src/workload/client_actor.h"
#include "src/workload/ycsb.h"

namespace rocksteady {

// Unit conversion for a dilated run.
struct Scale {
  double dilation = 1.0;

  double Us(Tick t) const { return static_cast<double>(t) / 1'000.0 / dilation; }
  double Seconds(Tick t) const { return static_cast<double>(t) / 1e9 / dilation; }
  // Rate of `count` events over `span` simulated time, in real units.
  double PerSecond(double count, Tick span) const {
    return span == 0 ? 0 : count * 1e9 * dilation / static_cast<double>(span);
  }
  double MBps(uint64_t bytes, Tick span) const {
    return PerSecond(static_cast<double>(bytes), span) / 1e6;
  }
};

inline ClusterConfig MakeConfig(int masters, int clients, double dilation, uint64_t seed = 42) {
  ClusterConfig config;
  config.num_masters = masters;
  config.num_clients = clients;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 20;
  config.master.segment_size = 256 * 1024;
  if (dilation != 1.0) {
    config.costs.Dilate(dilation);
  }
  return config;
}

// Splits `table` (initially fully on master 0) into `n` equal hash-range
// tablets across masters [0, n); call before LoadTable.
inline void SpreadTableAcross(Cluster& cluster, TableId table, int n) {
  for (int i = 1; i < n; i++) {
    const KeyHash split = static_cast<KeyHash>((~0ull / static_cast<uint64_t>(n)) *
                                               static_cast<uint64_t>(i));
    cluster.coordinator().SplitTablet(table, split);
  }
  const auto tablets = cluster.coordinator().GetTableConfig(table);
  for (size_t i = 0; i < tablets.size(); i++) {
    const auto& t = tablets[i];
    const ServerId owner = cluster.master(i % static_cast<size_t>(n)).id();
    if (t.owner != owner) {
      // ReassignTablet installs the tablet on the new owner before touching
      // the map, so the cross-layer coverage audit holds mid-spread.
      cluster.coordinator().ReassignTablet(t.table, t.start_hash, t.end_hash, owner);
    }
  }
}

// Prints the fabric's loss accounting after a run. All zeros on a healthy
// fabric; injected_* move only when a FaultInjector is installed, and the
// down-node counters move only when crashes were simulated — printing them
// makes a lossy or crashy run visibly so in every experiment summary.
inline void PrintNetworkFaultCounters(Cluster& cluster) {
  const Network& net = cluster.net();
  std::printf(
      "network faults: injected drops %llu, dups %llu, delays %llu; "
      "dropped to/from down nodes %llu/%llu\n",
      static_cast<unsigned long long>(net.injected_drops()),
      static_cast<unsigned long long>(net.injected_duplicates()),
      static_cast<unsigned long long>(net.injected_delays()),
      static_cast<unsigned long long>(net.dropped_to_down_node()),
      static_cast<unsigned long long>(net.dropped_from_down_node()));
}

// Closed-loop multiget driver (Figure 3): issues back-to-back multigets of
// `keys_per_get` keys drawn from `spread` consecutive servers' key pools.
class MultiGetLoop {
 public:
  MultiGetLoop(Cluster* cluster, RamCloudClient* client, TableId table,
               const std::vector<std::vector<std::string>>* pools, int spread, int keys_per_get,
               uint64_t* completed_objects)
      : cluster_(cluster),
        client_(client),
        table_(table),
        pools_(pools),
        spread_(spread),
        keys_per_get_(keys_per_get),
        completed_objects_(completed_objects) {}

  void Run(int concurrency) {
    for (int i = 0; i < concurrency; i++) {
      IssueNext();
    }
  }

  // Stops re-issuing; in-flight multigets drain.
  void Stop() { stopped_ = true; }

 private:
  void IssueNext() {
    if (stopped_) {
      return;
    }
    const size_t servers = pools_->size();
    const size_t primary = next_primary_++ % servers;
    std::vector<std::string> keys;
    keys.reserve(static_cast<size_t>(keys_per_get_));
    // Paper: spread 2 = 6 keys from one server + 1 from another, etc.
    const int from_primary = keys_per_get_ - (spread_ - 1);
    auto pick = [&](size_t server, int count) {
      const auto& pool = (*pools_)[server];
      for (int k = 0; k < count; k++) {
        keys.push_back(pool[cluster_->sim().rng().Uniform(pool.size())]);
      }
    };
    pick(primary, from_primary);
    for (int s = 1; s < spread_; s++) {
      pick((primary + static_cast<size_t>(s)) % servers, 1);
    }
    client_->MultiGet(table_, std::move(keys), [this](Status status) {
      if (status == Status::kOk) {
        *completed_objects_ += static_cast<uint64_t>(keys_per_get_);
      }
      IssueNext();
    });
  }

  Cluster* cluster_;
  RamCloudClient* client_;
  TableId table_;
  const std::vector<std::vector<std::string>>* pools_;
  int spread_;
  int keys_per_get_;
  uint64_t* completed_objects_;
  size_t next_primary_ = 0;
  bool stopped_ = false;
};

// Open-loop secondary-index scan driver (Figure 4).
class IndexScanActor {
 public:
  IndexScanActor(Cluster* cluster, RamCloudClient* client, TableId table, uint8_t index_id,
                 uint64_t num_secondary_keys, double theta, double scans_per_second,
                 Tick stop_time, LatencyTimeline* latency)
      : cluster_(cluster),
        client_(client),
        table_(table),
        index_id_(index_id),
        zipf_(num_secondary_keys, theta),
        rate_(scans_per_second),
        stop_time_(stop_time),
        latency_(latency) {}

  static std::string SecondaryKey(uint64_t id) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "sec%027llu", static_cast<unsigned long long>(id));
    return buffer;
  }

  void Start() { ScheduleNext(); }

  uint64_t completed() const { return completed_; }

 private:
  void ScheduleNext() {
    Simulator& sim = cluster_->sim();
    const double u = std::max(1e-12, sim.rng().NextDouble());
    const Tick gap = std::max<Tick>(1, static_cast<Tick>(-std::log(u) / rate_ * 1e9));
    const Tick at = sim.now() + gap;
    if (at >= stop_time_) {
      return;
    }
    sim.At(at, [this, at] {
      const std::string start_key = SecondaryKey(zipf_.Next(cluster_->sim().rng()));
      client_->IndexScan(table_, index_id_, start_key, 4, [this, at](Status status) {
        if (status == Status::kOk) {
          completed_++;
          if (latency_ != nullptr) {
            latency_->Record(cluster_->sim().now(), cluster_->sim().now() - at);
          }
        }
      });
      ScheduleNext();
    });
  }

  Cluster* cluster_;
  RamCloudClient* client_;
  TableId table_;
  uint8_t index_id_;
  ZipfianGenerator zipf_;
  double rate_;
  Tick stop_time_;
  LatencyTimeline* latency_;
  uint64_t completed_ = 0;
};

}  // namespace rocksteady

#endif  // ROCKSTEADY_BENCH_EXPERIMENT_COMMON_H_
