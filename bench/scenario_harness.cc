#include "bench/scenario_harness.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/operations.h"
#include "src/common/audit.h"
#include "src/common/random.h"
#include "src/migration/rocksteady_target.h"
#include "src/rebalance/planner.h"
#include "src/rebalance/telemetry.h"
#include "src/sim/fault_injector.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr size_t kKeyLength = 30;
constexpr size_t kValueLength = 100;
constexpr size_t kFlashHotKeys = 8;
constexpr double kFlashHotFraction = 0.8;
// Diurnal trough rate as a fraction of the peak (ops are skipped, not
// delayed, so the trace stays a function of the seed alone).
constexpr double kDiurnalTroughFraction = 0.35;

// Durability reference model: the last acked value per key, plus every
// value whose write failed (a "failed" write racing a fault may still have
// landed — reads may legally observe it).
struct KeyState {
  bool acked = false;
  std::string last_acked;
  std::set<std::string> failed_values;
};

struct PhaseCollector {
  ScenarioPhase spec;
  std::vector<Tick> latencies;
};

Tick Percentile(std::vector<Tick>& sorted, double fraction) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t index = std::min(sorted.size() - 1,
                                static_cast<size_t>(static_cast<double>(sorted.size()) * fraction));
  return sorted[index];
}

// Fraction of the base rate offered at time `now` for the spec's shape.
double OfferedFraction(const ScenarioSpec& spec, Tick now) {
  if (spec.shape != LoadShape::kDiurnal || spec.ops_stop == 0) {
    return 1.0;
  }
  const double pos = static_cast<double>(now) / static_cast<double>(spec.ops_stop);
  const double tri = pos < 0.5 ? pos * 2.0 : std::max(0.0, 2.0 - pos * 2.0);
  return kDiurnalTroughFraction + (1.0 - kDiurnalTroughFraction) * tri;
}

bool InFlashWindow(const ScenarioSpec& spec, Tick now) {
  return spec.shape == LoadShape::kFlashCrowd && now >= spec.flash_start &&
         now < spec.flash_end;
}

}  // namespace

ScenarioResult RunScenario(const ScenarioSpec& spec, uint64_t seed) {
  // Same lossy-fabric profile as the chaos suites.
  FaultInjector injector({.seed = seed * 1'000 + 7,
                          .drop_probability = 0.01,
                          .duplicate_probability = 0.005,
                          .max_extra_delay_ns = 2 * kMicrosecond});
  ClusterConfig config;
  config.num_masters = spec.masters;
  config.num_clients = spec.clients;
  config.seed = seed;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  Cluster cluster(config);
  cluster.net().SetFaultInjector(&injector);
  EnableMigration(&cluster);
  Simulator& sim = cluster.sim();

  // Standbys join the server list but own nothing until activated.
  const size_t active = spec.masters - spec.standbys;
  for (size_t i = active; i < spec.masters; i++) {
    cluster.coordinator().MarkStandby(cluster.master(i).id());
  }

  // Spread the table evenly across the active masters, then load.
  cluster.CreateTable(kTable, 0);
  for (size_t i = 1; i < active; i++) {
    const KeyHash split = static_cast<KeyHash>((~0ull / active) * i);
    cluster.coordinator().SplitTablet(kTable, split);
  }
  {
    const auto tablets = cluster.coordinator().GetTableConfig(kTable);
    for (size_t i = 0; i < tablets.size(); i++) {
      const ServerId owner = cluster.master(i % active).id();
      if (tablets[i].owner != owner) {
        cluster.coordinator().ReassignTablet(tablets[i].table, tablets[i].start_hash,
                                             tablets[i].end_hash, owner);
      }
    }
  }
  cluster.LoadTable(kTable, spec.records, kKeyLength, kValueLength);

  std::vector<std::string> keys;
  keys.reserve(spec.records);
  for (uint64_t i = 0; i < spec.records; i++) {
    keys.push_back(Cluster::MakeKey(i, kKeyLength));
  }

  // The full operations stack: telemetry -> planner (hot-spot + drain
  // modes), failure detector, and — when an event asks for it — the
  // rolling-restart orchestrator.
  ClusterTelemetry telemetry(&cluster);
  RebalancerOptions planner_options;
  planner_options.min_imbalance_ops_per_sec = 1'000;
  planner_options.migration_deadline_ns = 30 * kMillisecond;
  RebalancePlanner planner(&cluster, planner_options);
  planner.Start();
  cluster.coordinator().StartFailureDetector();
  RollingRestartOptions restart_options;
  restart_options.settle_ns = 3 * kMillisecond;
  RollingRestartOrchestrator orchestrator(&cluster, restart_options);

  bool rolling_restart_used = false;
  bool rolling_restart_done = false;
  std::vector<ServerId> drained;  // Servers whose final intent is "drained".
  for (const auto& event : spec.events) {
    switch (event.kind) {
      case ScenarioEvent::Kind::kBeginDrain:
        sim.At(event.at, [&cluster, index = event.master_index] {
          cluster.coordinator().BeginDrain(cluster.master(index).id());
        });
        break;
      case ScenarioEvent::Kind::kActivateServer:
        sim.At(event.at, [&cluster, index = event.master_index] {
          cluster.coordinator().ActivateServer(cluster.master(index).id());
        });
        break;
      case ScenarioEvent::Kind::kRollingRestart:
        rolling_restart_used = true;
        sim.At(event.at, [&orchestrator, &rolling_restart_done] {
          orchestrator.Start([&rolling_restart_done] { rolling_restart_done = true; });
        });
        break;
    }
  }
  // A later ActivateServer cancels the drain intent for that server.
  for (const auto& event : spec.events) {
    if (event.kind != ScenarioEvent::Kind::kBeginDrain) {
      continue;
    }
    bool cancelled = false;
    for (const auto& later : spec.events) {
      cancelled |= later.kind == ScenarioEvent::Kind::kActivateServer &&
                   later.master_index == event.master_index && later.at > event.at;
    }
    if (!cancelled) {
      drained.push_back(cluster.master(event.master_index).id());
    }
  }

  // Phase collectors: a read's latency is attributed to the phase it was
  // *issued* in.
  std::vector<PhaseCollector> phases;
  for (const auto& phase : spec.phases) {
    phases.push_back(PhaseCollector{phase, {}});
  }
  auto record_latency = [&phases](Tick issued_at, Tick latency) {
    for (auto& phase : phases) {
      if (issued_at >= phase.spec.start && issued_at < phase.spec.end) {
        phase.latencies.push_back(latency);
        break;
      }
    }
  };

  // Open-loop op pump with the durability reference.
  ScenarioResult result;
  Random ops_rng(seed * 31 + 5);
  std::map<std::string, KeyState> reference;
  std::set<std::string> write_in_flight;
  uint64_t op_index = 0;
  std::function<void()> pump = [&] {
    const Tick now = sim.now();
    if (now >= spec.ops_stop) {
      return;
    }
    const bool flash = InFlashWindow(spec, now);
    Tick gap = spec.op_gap;
    if (flash && spec.flash_rate_multiplier > 1) {
      gap = spec.op_gap / static_cast<Tick>(spec.flash_rate_multiplier);
    }
    sim.After(gap, pump);
    // Diurnal trough: shed the complement of the offered fraction. The
    // draw happens unconditionally so the random stream (and hence the
    // trace) is a pure function of the seed.
    const bool issue = ops_rng.NextDouble() < OfferedFraction(spec, now);
    if (!issue) {
      return;
    }
    std::string key;
    if (flash && ops_rng.NextDouble() < kFlashHotFraction) {
      key = keys[ops_rng.Uniform(kFlashHotKeys)];
    } else {
      key = keys[ops_rng.Uniform(keys.size())];
    }
    bool is_read = ops_rng.NextDouble() >= spec.write_fraction;
    if (!is_read && write_in_flight.contains(key)) {
      is_read = true;  // Serialize writes per key.
    }
    RamCloudClient& client = cluster.client(op_index % cluster.num_clients());
    if (is_read) {
      client.Read(kTable, key, [&result, &record_latency, &sim, issued = now](
                                   Status s, const std::string&) {
        if (s == Status::kOk || s == Status::kObjectNotFound) {
          result.digest.reads_ok++;
          record_latency(issued, sim.now() - issued);
        } else {
          result.digest.reads_failed++;
        }
      });
    } else {
      const std::string value = "scenario-" + std::to_string(op_index);
      KeyState* state = &reference[key];
      write_in_flight.insert(key);
      client.Write(kTable, key, value,
                   [&result, &write_in_flight, state, key, value](Status s) {
                     write_in_flight.erase(key);
                     if (s == Status::kOk) {
                       state->acked = true;
                       state->last_acked = value;
                       result.digest.acked_writes++;
                     } else {
                       state->failed_values.insert(value);
                       result.digest.failed_writes++;
                     }
                   });
    }
    op_index++;
  };
  sim.After(spec.op_gap, pump);

  sim.RunUntil(spec.horizon);
  planner.Stop();
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  // Operations convergence: every uncancelled drain reached decommissioned,
  // and a requested rolling restart ran to completion.
  result.operations_converged = !rolling_restart_used || rolling_restart_done;
  for (const ServerId id : drained) {
    result.operations_converged &=
        cluster.coordinator().lifecycle(id) == ServerLifecycle::kDecommissioned;
  }

  // Invariant audits: coordinator tiling + every live master's store.
  AuditReport report;
  cluster.coordinator().AuditInvariants(&report);
  for (size_t i = 0; i < cluster.num_masters(); i++) {
    if (!cluster.master(i).crashed()) {
      cluster.master(i).objects().AuditInvariants(&report);
    }
  }
  result.audits_ok = report.ok();
  result.audit_summary = report.Summary();

  // Read-back verification: no committed write lost.
  const std::string default_value(kValueLength, 'v');
  for (uint64_t i = 0; i < spec.records; i++) {
    const std::string& key = keys[i];
    cluster.client(0).Read(kTable, key, [&result, &reference, &default_value, &cluster, key](
                                            Status s, const std::string& v) {
      const auto it = reference.find(key);
      const KeyState* state = it == reference.end() ? nullptr : &it->second;
      bool ok = false;
      if (s == Status::kOk) {
        if (state != nullptr && state->acked) {
          ok = v == state->last_acked || state->failed_values.contains(v);
        } else if (state != nullptr) {
          ok = v == default_value || state->failed_values.contains(v);
        } else {
          ok = v == default_value;
        }
      }
      if (!ok) {
        result.mismatches++;
        const KeyHash hash = HashKey(kTable, key);
        result.mismatch_detail += "key=" + key + " status=" +
                                  std::to_string(static_cast<int>(s)) + " got='" + v + "'" +
                                  " want='" + (state ? state->last_acked : "") + "' hash=" +
                                  std::to_string(hash) + " owner=" +
                                  std::to_string(cluster.coordinator().OwnerOf(kTable, hash)) +
                                  "\n";
      }
    });
    if (i % 64 == 63) {
      sim.Run();
    }
  }
  sim.Run();

  for (auto& phase : phases) {
    std::sort(phase.latencies.begin(), phase.latencies.end());
    PhaseLatency out;
    out.name = phase.spec.name;
    out.ops = phase.latencies.size();
    out.p50_ns = Percentile(phase.latencies, 0.50);
    out.p999_ns = Percentile(phase.latencies, 0.999);
    result.digest.phases.push_back(std::move(out));
  }

  result.digest.trace_hash = sim.trace_hash();
  result.digest.events_processed = sim.events_processed();
  result.digest.drains_completed = cluster.coordinator().drains_completed();
  result.digest.restarts_completed = orchestrator.stats().restarts_completed;
  result.digest.migrations_completed = planner.stats().migrations_completed +
                                       planner.stats().drain_migrations_completed;
  cluster.net().SetFaultInjector(nullptr);
  return result;
}

const std::vector<ScenarioSpec>& ScenarioMatrix() {
  static const std::vector<ScenarioSpec> matrix = [] {
    std::vector<ScenarioSpec> scenarios;

    {
      // Scale-out: three loaded masters plus a standby; the standby is
      // activated mid-run and the planner migrates load onto it.
      ScenarioSpec s;
      s.name = "scale_out";
      s.masters = 4;
      s.standbys = 1;
      s.events = {{ScenarioEvent::Kind::kActivateServer, 15 * kMillisecond, 3}};
      s.phases = {{"before", 0, 15 * kMillisecond},
                  {"rebalancing", 15 * kMillisecond, 35 * kMillisecond},
                  {"after", 35 * kMillisecond, 50 * kMillisecond}};
      scenarios.push_back(std::move(s));
    }

    {
      // Scale-in: drain a loaded master under load; the planner evacuates
      // its quarter with bounded concurrency until it decommissions.
      ScenarioSpec s;
      s.name = "scale_in_drain";
      s.masters = 4;
      s.events = {{ScenarioEvent::Kind::kBeginDrain, 12 * kMillisecond, 3}};
      s.phases = {{"before", 0, 12 * kMillisecond},
                  {"draining", 12 * kMillisecond, 32 * kMillisecond},
                  {"after", 32 * kMillisecond, 50 * kMillisecond}};
      scenarios.push_back(std::move(s));
    }

    {
      // Rolling restart: every master cycled once, one at a time, while
      // the workload keeps running. Longer horizon: each cycle pays crash
      // detection (up to ping interval + timeout) plus recovery + settle.
      ScenarioSpec s;
      s.name = "rolling_restart";
      s.masters = 4;
      s.ops_stop = 80 * kMillisecond;
      s.horizon = 160 * kMillisecond;
      s.events = {{ScenarioEvent::Kind::kRollingRestart, 10 * kMillisecond, 0}};
      s.phases = {{"before", 0, 10 * kMillisecond},
                  {"restarting", 10 * kMillisecond, 80 * kMillisecond}};
      scenarios.push_back(std::move(s));
    }

    {
      // Flash crowd: a burst window triples the offered rate and aims 80%
      // of ops at a handful of hot keys; the planner may split + migrate.
      ScenarioSpec s;
      s.name = "flash_crowd";
      s.masters = 4;
      s.shape = LoadShape::kFlashCrowd;
      s.flash_start = 15 * kMillisecond;
      s.flash_end = 35 * kMillisecond;
      s.flash_rate_multiplier = 3;
      s.phases = {{"before", 0, 15 * kMillisecond},
                  {"flash", 15 * kMillisecond, 35 * kMillisecond},
                  {"after", 35 * kMillisecond, 50 * kMillisecond}};
      scenarios.push_back(std::move(s));
    }

    {
      // Diurnal: offered load follows a trough-peak-trough triangle wave
      // across the run (the planner should not thrash on the swing).
      ScenarioSpec s;
      s.name = "diurnal";
      s.masters = 4;
      s.shape = LoadShape::kDiurnal;
      s.phases = {{"trough_rise", 0, 17 * kMillisecond},
                  {"peak", 17 * kMillisecond, 33 * kMillisecond},
                  {"fall_trough", 33 * kMillisecond, 50 * kMillisecond}};
      scenarios.push_back(std::move(s));
    }

    return scenarios;
  }();
  return matrix;
}

}  // namespace rocksteady
