// Operational scenario matrix driver: runs each ScenarioMatrix() entry at a
// fixed seed and prints per-phase read latency plus the run's durability
// and convergence accounting. The 20-seed invariant sweep lives in
// tests/scenario_test.cc; this driver is for eyeballing the latency tables
// that EXPERIMENTS.md records.
#include <cstdio>

#include "bench/scenario_harness.h"

namespace rocksteady {
namespace {

constexpr uint64_t kSeed = 42;

void RunAndPrint(const ScenarioSpec& spec) {
  const ScenarioResult result = RunScenario(spec, kSeed);
  std::printf("\n=== scenario: %s (seed %llu) ===\n", spec.name.c_str(),
              static_cast<unsigned long long>(kSeed));
  std::printf("  %-14s %10s %12s %12s\n", "phase", "reads", "p50 (us)", "p99.9 (us)");
  for (const auto& phase : result.digest.phases) {
    std::printf("  %-14s %10llu %12.1f %12.1f\n", phase.name.c_str(),
                static_cast<unsigned long long>(phase.ops),
                static_cast<double>(phase.p50_ns) / 1e3,
                static_cast<double>(phase.p999_ns) / 1e3);
  }
  std::printf("  acked_writes=%llu failed_writes=%llu reads_ok=%llu reads_failed=%llu\n",
              static_cast<unsigned long long>(result.digest.acked_writes),
              static_cast<unsigned long long>(result.digest.failed_writes),
              static_cast<unsigned long long>(result.digest.reads_ok),
              static_cast<unsigned long long>(result.digest.reads_failed));
  std::printf("  migrations=%llu drains=%llu restarts=%llu mismatches=%llu audits=%s "
              "converged=%s trace=%016llx\n",
              static_cast<unsigned long long>(result.digest.migrations_completed),
              static_cast<unsigned long long>(result.digest.drains_completed),
              static_cast<unsigned long long>(result.digest.restarts_completed),
              static_cast<unsigned long long>(result.mismatches),
              result.audits_ok ? "ok" : "FAIL",
              result.operations_converged ? "yes" : "NO",
              static_cast<unsigned long long>(result.digest.trace_hash));
}

}  // namespace
}  // namespace rocksteady

int main() {
  for (const auto& spec : rocksteady::ScenarioMatrix()) {
    rocksteady::RunAndPrint(spec);
  }
  return 0;
}
