// Figure 12: "Impact of workload access skew on source-side dispatch load."
//
// Runs the Figure 9 experiment at Zipfian skew theta in {0, 0.5, 0.99, 1.5}
// and reports the source's dispatch-core utilization over time. Paper
// result: batched PriorityPulls hide the extra dispatch load of background
// Pulls regardless of skew — source dispatch load stays roughly flat from
// migration start to completion (it *steps down* at the ownership transfer
// and stays there).
#include <cstdio>
#include <optional>

#include "bench/experiment_common.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr uint64_t kRecords = 2'000'000;
constexpr int kClients = 8;
constexpr double kOfferedOpsPerSecond = 800'000.0 * 0.8;
constexpr Tick kWindow = kSecond / 10;
constexpr int kNumWindows = 30;
constexpr Tick kMigrateAt = kSecond;

struct SkewResult {
  double theta = 0;
  std::vector<double> src_dispatch;
  double migration_seconds = 0;
  uint64_t pp_records = 0;
};

SkewResult RunSkew(double theta) {
  Cluster cluster(MakeConfig(4, kClients, 1.0));
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  ycsb.theta = theta;
  YcsbWorkload workload(ycsb);

  UtilizationTimeline src_dispatch(kWindow, kNumWindows);
  cluster.master(0).cores().set_dispatch_util(&src_dispatch);

  const Tick experiment_end = static_cast<Tick>(kNumWindows) * kWindow;
  std::vector<std::unique_ptr<ClientActor>> actors;
  for (int c = 0; c < kClients; c++) {
    ClientActorConfig actor_config;
    actor_config.ops_per_second = kOfferedOpsPerSecond / kClients;
    actor_config.max_outstanding = 32;
    actor_config.stop_time = experiment_end;
    actors.push_back(
        std::make_unique<ClientActor>(kTable, &cluster.client(c), &workload, actor_config));
    actors.back()->Start();
  }

  std::optional<MigrationStats> stats;
  cluster.sim().At(kMigrateAt, [&] {
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, RocksteadyOptions{},
                             [&](const MigrationStats& s) { stats = s; });
  });
  cluster.sim().RunUntil(experiment_end);

  SkewResult result;
  result.theta = theta;
  for (int w = 0; w < kNumWindows; w++) {
    result.src_dispatch.push_back(src_dispatch.ActiveCores(static_cast<size_t>(w)));
  }
  if (stats.has_value()) {
    result.migration_seconds = stats->DurationSeconds();
    result.pp_records = stats->priority_pull_records;
  }
  return result;
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Figure 12: source-side dispatch load vs. workload skew\n");
  std::printf("=======================================================\n");
  std::printf("YCSB-B at ~80%% source dispatch load; migration of half the table at t=1 s.\n");
  std::printf("(paper: dispatch load stays ~flat through migration at every skew)\n\n");

  std::vector<SkewResult> results;
  for (double theta : {0.0, 0.5, 0.99, 1.5}) {
    results.push_back(RunSkew(theta));
  }

  std::printf("%6s", "t(s)");
  for (const auto& r : results) {
    std::printf("  theta=%-6.2f", r.theta);
  }
  std::printf("   (source dispatch load, active cores 0-1)\n");
  for (int w = 0; w < kNumWindows; w++) {
    std::printf("%6.1f", static_cast<double>(w) * 0.1);
    for (const auto& r : results) {
      std::printf("  %12.3f", r.src_dispatch[static_cast<size_t>(w)]);
    }
    std::printf("\n");
  }
  std::printf("\n%-12s %18s %18s\n", "theta", "migration (s)", "PP records");
  for (const auto& r : results) {
    std::printf("%-12.2f %18.3f %18llu\n", r.theta, r.migration_seconds,
                static_cast<unsigned long long>(r.pp_records));
  }
  return 0;
}
