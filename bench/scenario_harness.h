// Config-driven operational-scenario harness.
//
// A scenario is *data*: cluster shape, a load curve, a list of timed
// operator events (drain a master, activate a standby, start a rolling
// restart), and named phases for latency attribution. RunScenario() executes
// one (spec, seed) pair on a lossy fabric with the full operations stack
// live — rebalance planner, failure detector, drain protocol, rolling
// restart — and returns a digest carrying:
//  * durability accounting (a KeyState reference model per key: every read
//    at the end must return the last acked write or a concurrently-failed
//    value — zero lost acked writes),
//  * cluster invariant audits (coordinator tiling + per-master store),
//  * per-phase p50/p99.9 read latency,
//  * the simulator trace hash, so running the same (spec, seed) twice must
//    produce bit-identical digests (the determinism gate).
//
// ScenarioMatrix() declares the five cloud-operations scenarios the north
// star asks for: scale-out, scale-in (drain), rolling restart, flash crowd,
// and a diurnal load curve. Tests run each as a 20-seed chaos suite;
// bench/fig_scenarios.cc prints the per-phase latency tables.
#ifndef ROCKSTEADY_BENCH_SCENARIO_HARNESS_H_
#define ROCKSTEADY_BENCH_SCENARIO_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"

namespace rocksteady {

// How the offered load varies over the run.
enum class LoadShape {
  kConstant,    // Fixed op gap throughout.
  kDiurnal,     // Triangle wave: trough -> peak -> trough across the run.
  kFlashCrowd,  // Constant, then a burst window aims 80% of ops at a few
                // hot keys at a multiple of the base rate.
};

// One timed operator action.
struct ScenarioEvent {
  enum class Kind {
    kBeginDrain,      // Coordinator starts draining master_index.
    kActivateServer,  // Standby (or mid-drain cancel) -> kActive.
    kRollingRestart,  // Start the rolling-restart orchestrator.
  };
  Kind kind = Kind::kBeginDrain;
  Tick at = 0;
  size_t master_index = 0;  // Ignored by kRollingRestart.
};

// A named time window for latency attribution ([start, end) in sim time).
struct ScenarioPhase {
  std::string name;
  Tick start = 0;
  Tick end = 0;
};

struct ScenarioSpec {
  std::string name;
  size_t masters = 4;      // Total servers, including standbys.
  size_t standbys = 0;     // Last `standbys` masters start as kStandby.
  size_t clients = 2;
  uint64_t records = 1'500;
  Tick op_gap = 10 * kMicrosecond;   // Base offered rate (~100k ops/s).
  double write_fraction = 0.10;
  Tick ops_stop = 50 * kMillisecond;
  Tick horizon = 90 * kMillisecond;  // RunUntil() bound before draining.
  LoadShape shape = LoadShape::kConstant;
  // Flash-crowd parameters (used when shape == kFlashCrowd).
  Tick flash_start = 0;
  Tick flash_end = 0;
  int flash_rate_multiplier = 3;
  std::vector<ScenarioEvent> events;
  std::vector<ScenarioPhase> phases;
};

struct PhaseLatency {
  std::string name;
  uint64_t ops = 0;
  Tick p50_ns = 0;
  Tick p999_ns = 0;

  bool operator==(const PhaseLatency&) const = default;
};

// Everything a run asserts on. `Digest` is the bit-identical-replay core:
// two runs of the same (spec, seed) must compare equal on it.
struct ScenarioResult {
  struct Digest {
    uint64_t trace_hash = 0;
    uint64_t events_processed = 0;
    uint64_t acked_writes = 0;
    uint64_t failed_writes = 0;
    uint64_t reads_ok = 0;
    uint64_t reads_failed = 0;
    uint64_t drains_completed = 0;
    uint64_t restarts_completed = 0;
    uint64_t migrations_completed = 0;
    std::vector<PhaseLatency> phases;

    bool operator==(const Digest&) const = default;
  };

  Digest digest;
  uint64_t mismatches = 0;      // Acked writes lost or corrupted (must be 0).
  std::string mismatch_detail;
  bool audits_ok = false;       // Coordinator tiling + per-master stores.
  std::string audit_summary;
  bool operations_converged = false;  // Drains decommissioned, restarts done.
};

// Runs one scenario at one seed. Deterministic: same inputs, same Digest.
ScenarioResult RunScenario(const ScenarioSpec& spec, uint64_t seed);

// The five cloud-operations scenarios: scale-out, scale-in, rolling
// restart, flash crowd, diurnal.
const std::vector<ScenarioSpec>& ScenarioMatrix();

}  // namespace rocksteady

#endif  // ROCKSTEADY_BENCH_SCENARIO_HARNESS_H_
