// Figure 4: "Index scaling as a function of read throughput."
//
// One table with a secondary index; clients issue 4-record index scans with
// Zipfian (theta=0.5) start keys. Three placements:
//   1 indexlet, 1 tablet   — everything minimal
//   2 indexlets, 1 tablet  — index split across two servers
//   2 indexlets, 2 tablets — index and backing table both split
// Sweeping offered load, report the 99.9th percentile scan latency and the
// cluster dispatch load at each achieved throughput (objects/s = scans x 4).
//
// Paper result: at low load one indexlet + one tablet is sufficient and
// cheapest; at high load 2 indexlets + 1 tablet raises throughput at a
// 100 us 99.9th by ~54%; also splitting the tablet is *worse* (~6.3% less
// throughput, ~26% more dispatch load) because every scan then multigets
// two servers instead of one.
#include <cstdio>

#include "bench/experiment_common.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr uint8_t kIndex = 1;
constexpr uint64_t kRecords = 200'000;
constexpr int kClients = 8;
constexpr Tick kMeasure = kSecond * 3 / 10;

enum class Layout { k1i1t, k2i1t, k2i2t };

const char* LayoutName(Layout layout) {
  switch (layout) {
    case Layout::k1i1t:
      return "1 Indexlet, 1 Tablet";
    case Layout::k2i1t:
      return "2 Indexlets, 1 Tablet";
    case Layout::k2i2t:
      return "2 Indexlets, 2 Tablets";
  }
  return "?";
}

struct Point {
  double offered_scans = 0;
  double achieved_objects = 0;  // Objects/s = completed scans x 4.
  double p50_us = 0;
  double p999_us = 0;
  double dispatch_load = 0;  // Total busy dispatch cores, cluster-wide.
};

Point RunPoint(Layout layout, double scans_per_second) {
  // Masters: 0,1 = tablets; 2,3 = indexlets.
  Cluster cluster(MakeConfig(4, kClients, 1.0));
  cluster.CreateTable(kTable, 0);
  if (layout == Layout::k2i2t) {
    cluster.coordinator().SplitTablet(kTable, 1ull << 63);
    // Audit-safe reassignment of the upper half to master 1.
    cluster.coordinator().ReassignTablet(kTable, 1ull << 63, ~0ull, cluster.master(1).id());
  }
  const std::string median_key = IndexScanActor::SecondaryKey(kRecords / 2);
  if (layout == Layout::k1i1t) {
    cluster.coordinator().CreateIndex(kTable, kIndex,
                                      {{.start_key = "", .end_key = "", .owner = 3}});
  } else {
    cluster.coordinator().CreateIndex(kTable, kIndex,
                                      {{.start_key = "", .end_key = median_key, .owner = 3},
                                       {.start_key = median_key, .end_key = "", .owner = 4}});
  }

  // Load records and index entries directly (population is not measured).
  const std::string value(100, 'v');
  for (uint64_t i = 0; i < kRecords; i++) {
    const std::string key = Cluster::MakeKey(i, 30);
    const KeyHash hash = HashKey(kTable, key);
    const ServerId owner = cluster.coordinator().OwnerOf(kTable, hash);
    cluster.coordinator().master(owner)->objects().Write(kTable, key, hash, value);
    const std::string secondary = IndexScanActor::SecondaryKey(i);
    for (const auto& indexlet_config : *cluster.coordinator().GetIndexConfig(kTable, kIndex)) {
      if (secondary >= indexlet_config.start_key &&
          (indexlet_config.end_key.empty() || secondary < indexlet_config.end_key)) {
        cluster.coordinator()
            .master(indexlet_config.owner)
            ->FindIndexlet(kTable, kIndex, secondary)
            ->Insert(secondary, hash);
        break;
      }
    }
  }

  // Warm tablet caches.
  for (int c = 0; c < kClients; c++) {
    cluster.client(static_cast<size_t>(c))
        .Read(kTable, Cluster::MakeKey(0, 30), [](Status, const std::string&) {});
  }
  cluster.sim().Run();

  LatencyTimeline latency(kMeasure, 2);
  const Tick t0 = cluster.sim().now();
  std::vector<std::unique_ptr<IndexScanActor>> actors;
  for (int c = 0; c < kClients; c++) {
    actors.push_back(std::make_unique<IndexScanActor>(
        &cluster, &cluster.client(static_cast<size_t>(c)), kTable, kIndex, kRecords, 0.5,
        scans_per_second / kClients, t0 + kMeasure, &latency));
    actors.back()->Start();
  }
  for (size_t s = 0; s < cluster.num_masters(); s++) {
    cluster.master(s).cores().ResetBusyCounters();
  }
  // Bounded drain: overloaded points would otherwise spend minutes of
  // simulated time in client retry storms; completions past the drain
  // window don't count toward the measurement either way.
  cluster.sim().RunUntil(t0 + kMeasure + kMeasure / 2);

  Point point;
  point.offered_scans = scans_per_second;
  uint64_t scans = 0;
  for (const auto& actor : actors) {
    scans += actor->completed();
  }
  point.achieved_objects =
      static_cast<double>(scans) * 4.0 / (static_cast<double>(kMeasure) / 1e9);
  const Histogram total = latency.Total();
  point.p50_us = static_cast<double>(total.Percentile(0.5)) / 1e3;
  point.p999_us = static_cast<double>(total.Percentile(0.999)) / 1e3;
  Tick dispatch_busy = 0;
  for (size_t s = 0; s < cluster.num_masters(); s++) {
    dispatch_busy += cluster.master(s).cores().total_dispatch_busy();
  }
  point.dispatch_load = static_cast<double>(dispatch_busy) / static_cast<double>(kMeasure);
  return point;
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Figure 4: index scaling vs. read throughput\n");
  std::printf("============================================\n");
  std::printf("%llu records, 4-record Zipfian(0.5) index scans; objects/s = scans x 4.\n",
              static_cast<unsigned long long>(kRecords));
  std::printf("(paper: 1i/1t cheapest at low load; 2i/1t +54%% throughput at a 100 us\n");
  std::printf(" 99.9th; 2i/2t worse throughput and +26%% dispatch load)\n");
  for (Layout layout : {Layout::k1i1t, Layout::k2i1t, Layout::k2i2t}) {
    std::printf("\n--- %s ---\n", LayoutName(layout));
    std::printf("%16s %18s %10s %10s %16s\n", "offered scans/s", "Mobjects/s", "p50(us)",
                "p999(us)", "dispatch load");
    for (double scans : {100e3, 250e3, 400e3, 500e3, 600e3, 700e3}) {
      const Point p = RunPoint(layout, scans);
      std::printf("%16.0f %18.2f %10.1f %10.1f %16.2f\n", p.offered_scans,
                  p.achieved_objects / 1e6, p.p50_us, p.p999_us, p.dispatch_load);
    }
  }
  return 0;
}
