// Figure 15: "Source and target parallel migration scalability."
//
// Runs the pull (source) and replay (target) logic in isolation on large
// batches of records, sweeping worker counts 1..16 and record sizes 128 B
// and 1024 B, and reports achieved GB/s per side. "Record size" means the
// whole log entry (header + key + value), as the migration path moves
// entries.
//
// Paper result: source ~5.7 GB/s and target ~3 GB/s at 16 threads for 128 B
// records (1.8-2.4x apart); for 1 KB records both sides clear line rate
// (5 GB/s) with a few cores.
#include <cstdio>

#include "src/common/hash.h"
#include "src/log/side_log.h"
#include "src/sim/core_set.h"
#include "src/sim/cost_model.h"
#include "src/store/object_manager.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;

// Builds an ObjectManager holding `count` records whose full log entries are
// `entry_bytes` long.
std::unique_ptr<ObjectManager> BuildStore(size_t count, size_t entry_bytes) {
  ObjectManagerOptions options;
  options.hash_table_log2_buckets = 18;
  options.segment_size = 1 << 20;
  auto om = std::make_unique<ObjectManager>(options);
  const size_t key_length = 30;
  const size_t value_length = entry_bytes - sizeof(LogEntryHeader) - key_length;
  const std::string value(value_length, 'v');
  for (size_t i = 0; i < count; i++) {
    char key[40];
    std::snprintf(key, sizeof(key), "key%027zu", i);
    om->Write(kTable, key, HashKey(std::string_view(key, key_length)), value);
  }
  return om;
}

// Source side: saturate `workers` cores with Pull processing over 2x that
// many hash-space partitions; measure entry bytes scanned per simulated
// second.
double SourceRateGBps(int workers, size_t entry_bytes) {
  const size_t count = 64 * 1024;
  auto om = BuildStore(count, entry_bytes);
  Simulator sim(1);
  CostModel costs;
  CoreSet cores(&sim, workers);

  struct Partition {
    size_t begin = 0;
    size_t end = 0;
    size_t cursor = 0;
  };
  const size_t parts = static_cast<size_t>(workers) * 2;
  std::vector<Partition> partitions(parts);
  const size_t buckets = om->hash_table().num_buckets();
  for (size_t p = 0; p < parts; p++) {
    partitions[p] = {buckets * p / parts, buckets * (p + 1) / parts, buckets * p / parts};
  }

  uint64_t total_bytes = 0;
  // One pull task per partition at a time, re-armed until exhausted (an
  // ideal target with zero turnaround).
  std::function<void(size_t)> pump = [&](size_t p) {
    Partition& partition = partitions[p];
    if (partition.cursor >= partition.end) {
      return;
    }
    cores.EnqueueWorker(
        {Priority::kMigration,
         [&, p] {
           Partition& part = partitions[p];
           size_t bytes = 0;
           size_t records = 0;
           part.cursor = om->hash_table().ScanBuckets(
               part.end, part.cursor,
               [&](KeyHash, LogRef ref) {
                 LogEntryView entry;
                 if (om->log().Read(ref, &entry)) {
                   bytes += entry.header.TotalLength();
                   records++;
                 }
               },
               [&] { return bytes < 20 * 1024; });
           total_bytes += bytes;
           return costs.PullCost(records, bytes);
         },
         [&, p] { pump(p); }});
  };
  for (size_t p = 0; p < parts; p++) {
    pump(p);
  }
  sim.Run();
  return static_cast<double>(total_bytes) / static_cast<double>(sim.now());
}

// Target side: replay pre-serialized 20 KB batches into per-slot side logs
// on `workers` cores; measure entry bytes replayed per simulated second.
double TargetRateGBps(int workers, size_t entry_bytes) {
  Simulator sim(1);
  CostModel costs;
  CoreSet cores(&sim, workers);
  ObjectManagerOptions options;
  options.hash_table_log2_buckets = 18;
  options.segment_size = 1 << 20;
  ObjectManager om(options);

  // Pre-serialize one representative batch (re-used with distinct hashes so
  // hash-table insertion is exercised for real).
  const size_t key_length = 30;
  const size_t value_length = entry_bytes - sizeof(LogEntryHeader) - key_length;
  const std::string value(value_length, 'm');
  const size_t records_per_batch = (20 * 1024) / entry_bytes + 1;

  const size_t total_batches = 2'000;
  std::vector<std::unique_ptr<SideLog>> side_logs;
  for (int w = 0; w < workers * 2; w++) {
    side_logs.push_back(std::make_unique<SideLog>(&om.log()));
  }
  uint64_t total_bytes = 0;
  uint64_t next_id = 0;
  size_t issued = 0;
  std::function<void(size_t)> pump = [&](size_t slot) {
    if (issued >= total_batches) {
      return;
    }
    issued++;
    // Build the batch lazily (wall-clock work is real replay work below).
    auto batch = std::make_shared<std::vector<uint8_t>>();
    batch->reserve(records_per_batch * entry_bytes);
    for (size_t r = 0; r < records_per_batch; r++) {
      char key[40];
      std::snprintf(key, sizeof(key), "mig%027llu",
                    static_cast<unsigned long long>(next_id++));
      LogEntryHeader header;
      header.type = LogEntryType::kObject;
      header.table_id = kTable;
      header.key_hash = HashKey(std::string_view(key, key_length));
      header.version = 1;
      const size_t offset = batch->size();
      batch->resize(offset + sizeof(LogEntryHeader) + key_length + value.size());
      WriteEntry(batch->data() + offset, header, std::string_view(key, key_length), value);
    }
    cores.EnqueueWorker(
        {Priority::kMigration,
         [&, batch, slot] {
           size_t offset = 0;
           size_t records = 0;
           while (offset < batch->size()) {
             LogEntryView entry;
             if (!ReadEntry(batch->data() + offset, batch->size() - offset, &entry)) {
               break;
             }
             om.Replay(entry, side_logs[slot].get());
             records++;
             offset += entry.header.TotalLength();
           }
           total_bytes += batch->size();
           return costs.ReplayCost(records, batch->size());
         },
         [&, slot] { pump(slot); }});
  };
  for (size_t slot = 0; slot < side_logs.size(); slot++) {
    pump(slot);
  }
  sim.Run();
  return static_cast<double>(total_bytes) / static_cast<double>(sim.now());
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Figure 15: Source and target parallel migration scalability\n");
  std::printf("============================================================\n");
  std::printf("(paper @16 threads, 128 B: source 5.7 GB/s, target 3 GB/s; line rate 5 GB/s)\n\n");
  std::printf("%-8s %20s %20s %20s %20s\n", "threads", "src 128B (GB/s)", "tgt 128B (GB/s)",
              "src 1024B (GB/s)", "tgt 1024B (GB/s)");
  for (int workers : {1, 2, 4, 8, 12, 16}) {
    const double s128 = SourceRateGBps(workers, 128);
    const double t128 = TargetRateGBps(workers, 128);
    const double s1k = SourceRateGBps(workers, 1024);
    const double t1k = TargetRateGBps(workers, 1024);
    std::printf("%-8d %20.2f %20.2f %20.2f %20.2f\n", workers, s128, t128, s1k, t1k);
  }
  std::printf("\nsource/target ratio @16 threads (128 B): %.2fx (paper: 1.8-2.4x)\n",
              SourceRateGBps(16, 128) / TargetRateGBps(16, 128));
  return 0;
}
