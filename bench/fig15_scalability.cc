// Figure 15: "Source and target parallel migration scalability."
//
// Runs the pull (source) and replay (target) logic in isolation on large
// batches of records, sweeping worker counts 1..16 and record sizes 128 B
// and 1024 B, and reports achieved GB/s per side. "Record size" means the
// whole log entry (header + key + value), as the migration path moves
// entries.
//
// Paper result: source ~5.7 GB/s and target ~3 GB/s at 16 threads for 128 B
// records (1.8-2.4x apart); for 1 KB records both sides clear line rate
// (5 GB/s) with a few cores.
//
// A second section scales the *simulator itself* at the paper's cluster
// size: a 24-master YCSB-B cluster sharded across event lanes, sweeping the
// lane count and reporting the schedule's critical path (max lane busy +
// merge, per window) as the projected parallel wall-clock. Every lane count
// must produce the same trace hash — the sharded engine's contract.
#include <chrono>
#include <cstdio>

#include "bench/experiment_common.h"
#include "src/common/hash.h"
#include "src/log/side_log.h"
#include "src/sim/core_set.h"
#include "src/sim/cost_model.h"
#include "src/store/object_manager.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;

// Builds an ObjectManager holding `count` records whose full log entries are
// `entry_bytes` long.
std::unique_ptr<ObjectManager> BuildStore(size_t count, size_t entry_bytes) {
  ObjectManagerOptions options;
  options.hash_table_log2_buckets = 18;
  options.segment_size = 1 << 20;
  auto om = std::make_unique<ObjectManager>(options);
  const size_t key_length = 30;
  const size_t value_length = entry_bytes - sizeof(LogEntryHeader) - key_length;
  const std::string value(value_length, 'v');
  for (size_t i = 0; i < count; i++) {
    char key[40];
    std::snprintf(key, sizeof(key), "key%027zu", i);
    om->Write(kTable, key, HashKey(std::string_view(key, key_length)), value);
  }
  return om;
}

// Source side: saturate `workers` cores with Pull processing over 2x that
// many hash-space partitions; measure entry bytes scanned per simulated
// second.
double SourceRateGBps(int workers, size_t entry_bytes) {
  const size_t count = 64 * 1024;
  auto om = BuildStore(count, entry_bytes);
  Simulator sim(1);
  CostModel costs;
  CoreSet cores(&sim, workers);

  struct Partition {
    size_t begin = 0;
    size_t end = 0;
    size_t cursor = 0;
  };
  const size_t parts = static_cast<size_t>(workers) * 2;
  std::vector<Partition> partitions(parts);
  const size_t buckets = om->hash_table().num_buckets();
  for (size_t p = 0; p < parts; p++) {
    partitions[p] = {buckets * p / parts, buckets * (p + 1) / parts, buckets * p / parts};
  }

  uint64_t total_bytes = 0;
  // One pull task per partition at a time, re-armed until exhausted (an
  // ideal target with zero turnaround).
  std::function<void(size_t)> pump = [&](size_t p) {
    Partition& partition = partitions[p];
    if (partition.cursor >= partition.end) {
      return;
    }
    cores.EnqueueWorker(
        {Priority::kMigration,
         [&, p] {
           Partition& part = partitions[p];
           size_t bytes = 0;
           size_t records = 0;
           part.cursor = om->hash_table().ScanBuckets(
               part.end, part.cursor,
               [&](KeyHash, LogRef ref) {
                 LogEntryView entry;
                 if (om->log().Read(ref, &entry)) {
                   bytes += entry.header.TotalLength();
                   records++;
                 }
               },
               [&] { return bytes < 20 * 1024; });
           total_bytes += bytes;
           return costs.PullCost(records, bytes);
         },
         [&, p] { pump(p); }});
  };
  for (size_t p = 0; p < parts; p++) {
    pump(p);
  }
  sim.Run();
  return static_cast<double>(total_bytes) / static_cast<double>(sim.now());
}

// Target side: replay pre-serialized 20 KB batches into per-slot side logs
// on `workers` cores; measure entry bytes replayed per simulated second.
double TargetRateGBps(int workers, size_t entry_bytes) {
  Simulator sim(1);
  CostModel costs;
  CoreSet cores(&sim, workers);
  ObjectManagerOptions options;
  options.hash_table_log2_buckets = 18;
  options.segment_size = 1 << 20;
  ObjectManager om(options);

  // Pre-serialize one representative batch (re-used with distinct hashes so
  // hash-table insertion is exercised for real).
  const size_t key_length = 30;
  const size_t value_length = entry_bytes - sizeof(LogEntryHeader) - key_length;
  const std::string value(value_length, 'm');
  const size_t records_per_batch = (20 * 1024) / entry_bytes + 1;

  const size_t total_batches = 2'000;
  std::vector<std::unique_ptr<SideLog>> side_logs;
  for (int w = 0; w < workers * 2; w++) {
    side_logs.push_back(std::make_unique<SideLog>(&om.log()));
  }
  uint64_t total_bytes = 0;
  uint64_t next_id = 0;
  size_t issued = 0;
  std::function<void(size_t)> pump = [&](size_t slot) {
    if (issued >= total_batches) {
      return;
    }
    issued++;
    // Build the batch lazily (wall-clock work is real replay work below).
    auto batch = std::make_shared<std::vector<uint8_t>>();
    batch->reserve(records_per_batch * entry_bytes);
    for (size_t r = 0; r < records_per_batch; r++) {
      char key[40];
      std::snprintf(key, sizeof(key), "mig%027llu",
                    static_cast<unsigned long long>(next_id++));
      LogEntryHeader header;
      header.type = LogEntryType::kObject;
      header.table_id = kTable;
      header.key_hash = HashKey(std::string_view(key, key_length));
      header.version = 1;
      const size_t offset = batch->size();
      batch->resize(offset + sizeof(LogEntryHeader) + key_length + value.size());
      WriteEntry(batch->data() + offset, header, std::string_view(key, key_length), value);
    }
    cores.EnqueueWorker(
        {Priority::kMigration,
         [&, batch, slot] {
           size_t offset = 0;
           size_t records = 0;
           while (offset < batch->size()) {
             LogEntryView entry;
             if (!ReadEntry(batch->data() + offset, batch->size() - offset, &entry)) {
               break;
             }
             om.Replay(entry, side_logs[slot].get());
             records++;
             offset += entry.header.TotalLength();
           }
           total_bytes += batch->size();
           return costs.ReplayCost(records, batch->size());
         },
         [&, slot] { pump(slot); }});
  };
  for (size_t slot = 0; slot < side_logs.size(); slot++) {
    pump(slot);
  }
  sim.Run();
  return static_cast<double>(total_bytes) / static_cast<double>(sim.now());
}

// --- Lane-sharded simulator scaling at the paper's 24-server size. ---

struct LaneScalePoint {
  size_t events = 0;
  double wall_s = 0;        // Measured single-CPU wall (all lanes serialized).
  double critical_s = 0;    // Sum over windows of (max lane busy + merge).
  uint64_t trace_hash = 0;
};

// One YCSB-B run sharded across `lanes` event lanes (unthreaded: this
// container has one CPU, so the critical path — not the contended thread
// wall — is the parallel projection).
LaneScalePoint RunLaneScale(int lanes, int masters, int clients, double ops_per_client,
                            Tick stop) {
  ClusterConfig config = MakeConfig(masters, clients, 1.0);
  config.master.hash_table_log2_buckets = 15;
  config.master.segment_size = 256 * 1024;
  config.lanes = lanes;
  Cluster cluster(config);

  double critical = 0;
  double window_max = 0;
  std::chrono::steady_clock::time_point mark;
  auto lap = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - mark).count();
  };
  LaneSet::PhaseHooks hooks;
  hooks.lane_begin = [&](int) { mark = std::chrono::steady_clock::now(); };
  hooks.lane_end = [&](int) { window_max = std::max(window_max, lap()); };
  hooks.merge_begin = [&] { mark = std::chrono::steady_clock::now(); };
  hooks.merge_end = [&] {
    critical += window_max + lap();
    window_max = 0;
  };
  cluster.lanes()->set_phase_hooks(std::move(hooks));

  const TableId table = 1;
  cluster.CreateTable(table, 0);
  SpreadTableAcross(cluster, table, config.num_masters);
  cluster.LoadTable(table, 48'000, 12, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = 48'000;
  ClientActorConfig actor_config;
  actor_config.ops_per_second = ops_per_client;
  actor_config.stop_time = stop;
  std::vector<std::unique_ptr<YcsbWorkload>> workloads;
  std::vector<std::unique_ptr<ClientActor>> actors;
  for (int c = 0; c < config.num_clients; c++) {
    workloads.push_back(std::make_unique<YcsbWorkload>(ycsb));
    actors.push_back(std::make_unique<ClientActor>(table, &cluster.client(static_cast<size_t>(c)),
                                                   workloads.back().get(), actor_config));
    actors.back()->Start();
  }

  LaneScalePoint point;
  const size_t before = cluster.events_processed();
  const auto start = std::chrono::steady_clock::now();
  cluster.Run();
  point.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  point.events = cluster.events_processed() - before;
  point.critical_s = critical;
  point.trace_hash = cluster.trace_hash();
  return point;
}

void LaneSweep(const char* title, std::initializer_list<int> lane_counts, int masters,
               int clients, double ops_per_client, Tick stop) {
  std::printf("\n%s\n", title);
  std::printf("-----------------------------------------------------------------------------\n");
  std::printf("%-6s %12s %12s %14s %16s %10s\n", "lanes", "events", "wall (s)", "critical (s)",
              "model events/s", "speedup");
  LaneScalePoint base;
  bool first = true;
  for (int lanes : lane_counts) {
    const LaneScalePoint point = RunLaneScale(lanes, masters, clients, ops_per_client, stop);
    if (first) {
      base = point;
      first = false;
    } else if (point.trace_hash != base.trace_hash) {
      std::printf("TRACE HASH DIVERGED at %d lanes: 0x%016llx vs 0x%016llx\n", lanes,
                  static_cast<unsigned long long>(point.trace_hash),
                  static_cast<unsigned long long>(base.trace_hash));
      std::exit(1);
    }
    // At 1 lane the critical path IS the wall (one lane, empty merges), so
    // speedup is wall-vs-critical throughout.
    std::printf("%-6d %12zu %12.3f %14.3f %16.0f %9.2fx\n", lanes, point.events, point.wall_s,
                point.critical_s, static_cast<double>(point.events) / point.critical_s,
                base.wall_s / point.critical_s);
  }
  std::printf("(trace hash identical at every lane count: 0x%016llx)\n",
              static_cast<unsigned long long>(base.trace_hash));
}

void PrintLaneScaling() {
  LaneSweep("Simulator lane scaling: 24 masters, 8 clients, YCSB-B (3.2M ops/s aggregate)",
            {1, 2, 4, 8}, 24, 8, 400'000, 30 * kMillisecond);
  // The north-star shape: 96 servers, four times the paper's cluster. A
  // shorter window keeps the sweep quick; the per-window density is what
  // the lanes see.
  LaneSweep("Simulator lane scaling: 96 masters, 16 clients, YCSB-B (6.4M ops/s aggregate)",
            {1, 4, 8}, 96, 16, 400'000, 10 * kMillisecond);
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Figure 15: Source and target parallel migration scalability\n");
  std::printf("============================================================\n");
  std::printf("(paper @16 threads, 128 B: source 5.7 GB/s, target 3 GB/s; line rate 5 GB/s)\n\n");
  std::printf("%-8s %20s %20s %20s %20s\n", "threads", "src 128B (GB/s)", "tgt 128B (GB/s)",
              "src 1024B (GB/s)", "tgt 1024B (GB/s)");
  for (int workers : {1, 2, 4, 8, 12, 16}) {
    const double s128 = SourceRateGBps(workers, 128);
    const double t128 = TargetRateGBps(workers, 128);
    const double s1k = SourceRateGBps(workers, 1024);
    const double t1k = TargetRateGBps(workers, 1024);
    std::printf("%-8d %20.2f %20.2f %20.2f %20.2f\n", workers, s128, t128, s1k, t1k);
  }
  std::printf("\nsource/target ratio @16 threads (128 B): %.2fx (paper: 1.8-2.4x)\n",
              SourceRateGBps(16, 128) / TargetRateGBps(16, 128));
  PrintLaneScaling();
  return 0;
}
