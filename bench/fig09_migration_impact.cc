// Figures 9, 10, and 11: YCSB-B throughput, client-observed read latency
// (median + 99.9th), and dispatch/worker core utilization over time while
// half of a table live-migrates, for three protocols:
//   (a) Rocksteady (immediate ownership + async batched PriorityPulls +
//       parallel low-priority Pulls + lazy re-replication)
//   (b) Rocksteady without PriorityPulls
//   (c) source retains ownership (pre-copy rounds + freeze + delta) with
//       synchronous re-replication
//
// Paper headline (§4.2): (a) migrates at 758 MB/s with 99.9th <= 250 us and
// median ~10 us under load; (b) strands reads until their records are
// pulled (19% faster transfer); (c) is 27.7% slower and cannot use the
// target's resources during migration.
//
// Scaling: the paper ran 120 s against a 27.9 GB table (migration ~30 s);
// this driver runs a proportionally shorter window against a scaled table
// (migration rates are size-independent, so only the plot's x-extent
// changes). See EXPERIMENTS.md.
#include <cstdio>
#include <cstring>
#include <optional>

#include "bench/experiment_common.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr double kDilation = 1.0;
constexpr uint64_t kRecords = 3'500'000;  // ~600 MB of log; ~300 MB migrates.
constexpr int kClients = 8;
// 80% dispatch load on the source (its capacity is ~1 op/us).
constexpr double kOfferedOpsPerSecondReal = 800'000.0 * 0.8;
constexpr Tick kWindow = kSecond / 10;
constexpr int kNumWindows = 40;
constexpr Tick kMigrateAt = kSecond;

void RunMode(const char* name, MigrationMode mode) {
  Scale scale{kDilation};
  const Tick window_dilated_early = static_cast<Tick>(static_cast<double>(kWindow) * kDilation);
  const Tick experiment_end = static_cast<Tick>(kNumWindows) * window_dilated_early;

  Cluster cluster(MakeConfig(4, kClients, kDilation));
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);

  const Tick window_dilated = static_cast<Tick>(static_cast<double>(kWindow) * kDilation);
  LatencyTimeline reads(window_dilated, kNumWindows);
  LatencyTimeline all_ops(window_dilated, kNumWindows);
  UtilizationTimeline src_dispatch(window_dilated, kNumWindows);
  UtilizationTimeline src_worker(window_dilated, kNumWindows);
  UtilizationTimeline tgt_dispatch(window_dilated, kNumWindows);
  UtilizationTimeline tgt_worker(window_dilated, kNumWindows);
  CounterTimeline migrated(window_dilated, kNumWindows);
  cluster.master(0).cores().set_dispatch_util(&src_dispatch);
  cluster.master(0).cores().set_worker_util(&src_worker);
  cluster.master(1).cores().set_dispatch_util(&tgt_dispatch);
  cluster.master(1).cores().set_worker_util(&tgt_worker);

  std::vector<std::unique_ptr<ClientActor>> actors;
  for (int c = 0; c < kClients; c++) {
    ClientActorConfig actor_config;
    actor_config.ops_per_second = kOfferedOpsPerSecondReal / kDilation / kClients;
    actor_config.max_outstanding = 32;
    actor_config.stop_time = experiment_end;
    actors.push_back(
        std::make_unique<ClientActor>(kTable, &cluster.client(c % kClients), &workload,
                                      actor_config));
    actors.back()->set_read_latency(&reads);
    actors.back()->set_throughput(&all_ops);
    actors.back()->Start();
  }

  std::optional<MigrationStats> stats;
  cluster.sim().At(static_cast<Tick>(static_cast<double>(kMigrateAt) * kDilation), [&] {
    RocksteadyOptions options;
    options.mode = mode;
    auto* manager = StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, options,
                                             [&](const MigrationStats& s) { stats = s; });
    manager->set_bytes_timeline(&migrated);
  });

  cluster.sim().RunUntil(experiment_end);

  std::printf("\n--- %s ---\n", name);
  std::printf("%6s %12s %10s %10s | %8s %8s %8s %8s | %10s\n", "t(s)", "kOps/s", "med(us)",
              "p999(us)", "srcDisp", "tgtDisp", "srcWork", "tgtWork", "mig MB/s");
  for (int w = 0; w < kNumWindows; w++) {
    const auto i = static_cast<size_t>(w);
    std::printf("%6.1f %12.1f %10.1f %10.1f | %8.2f %8.2f %8.2f %8.2f | %10.1f\n",
                static_cast<double>(w) * 0.1,
                scale.PerSecond(static_cast<double>(all_ops.Count(i)), window_dilated) / 1e3,
                scale.Us(reads.Percentile(i, 0.5)), scale.Us(reads.Percentile(i, 0.999)),
                src_dispatch.ActiveCores(i), tgt_dispatch.ActiveCores(i),
                src_worker.ActiveCores(i), tgt_worker.ActiveCores(i),
                scale.PerSecond(static_cast<double>(migrated.Count(i)), window_dilated) / 1e6);
  }
  uint64_t failed = 0;
  uint64_t retry_later = 0;
  for (int c = 0; c < kClients; c++) {
    failed += actors[static_cast<size_t>(c)]->failed();
    retry_later += cluster.client(static_cast<size_t>(c)).retry_later_retries();
  }
  if (stats.has_value()) {
    std::printf("summary: transfer %.0f MB/s (to last pull); full migration incl. lazy "
                "re-replication %.0f MB/s\n",
                scale.MBps(stats->bytes_pulled, stats->last_pull_time - stats->start_time),
                scale.MBps(stats->bytes_pulled, stats->end_time - stats->start_time));
    std::printf("         migrated %.1f MB in %.2f s; "
                "%llu pulls, %llu PP batches (%llu records), rounds=%llu\n",
                static_cast<double>(stats->bytes_pulled) / 1e6,
                scale.Seconds(stats->end_time - stats->start_time),
                static_cast<unsigned long long>(stats->pulls_completed),
                static_cast<unsigned long long>(stats->priority_pull_batches),
                static_cast<unsigned long long>(stats->priority_pull_records),
                static_cast<unsigned long long>(stats->rounds));
  } else {
    std::printf("summary: migration did not complete within the window\n");
  }
  std::printf("client retry-later retries: %llu, failed (timed-out) ops: %llu\n",
              static_cast<unsigned long long>(retry_later),
              static_cast<unsigned long long>(failed));
  PrintNetworkFaultCounters(cluster);
}

}  // namespace
}  // namespace rocksteady

int main(int argc, char** argv) {
  using namespace rocksteady;
  std::printf("Figures 9/10/11: YCSB-B during live migration\n");
  (void)kDilation;
  std::printf("Workload: YCSB-B theta=0.99, %d clients, source at ~80%% dispatch load;\n",
              kClients);
  std::printf("migrating the upper half of a %.0f MB table starting at t=1 s.\n",
              static_cast<double>(kRecords) * 170 / 1e6);

  const char* only = argc > 1 ? argv[1] : "all";
  if (std::strcmp(only, "all") == 0 || std::strcmp(only, "rocksteady") == 0) {
    RunMode("(a) Rocksteady", MigrationMode::kRocksteady);
  }
  if (std::strcmp(only, "all") == 0 || std::strcmp(only, "no_priority_pulls") == 0) {
    RunMode("(b) No PriorityPulls", MigrationMode::kNoPriorityPulls);
  }
  if (std::strcmp(only, "all") == 0 || std::strcmp(only, "source_owns") == 0) {
    RunMode("(c) Source retains ownership (sync re-replication)",
            MigrationMode::kSourceOwns);
  }
  return 0;
}
