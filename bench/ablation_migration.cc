// Ablations over Rocksteady's design knobs (§4.1 fixes them at: 8 hash-space
// partitions, 20 KB pulls, PriorityPull batches of 16, lazy re-replication).
// Each row migrates half a table under YCSB-B at ~80% source dispatch load
// and reports the transfer rate and the 99.9th percentile read latency over
// the migration interval.
//
// What to expect (and why the paper chose its defaults):
//  * partitions: 1 partition serializes pull/replay (RTT-bound); a few are
//    enough to hide round trips (§3.1.2); beyond ~2x workers adds nothing.
//  * pull budget: tiny pulls pay per-RPC overhead; huge pulls create long
//    non-preemptible source tasks that bump tail latency (§3.1.1).
//  * PP batch size: single-record batches multiply source RPCs (§3.3).
//  * lazy vs. sync re-replication: §4.2's 1.4x claim.
#include <cstdio>
#include <optional>

#include "bench/experiment_common.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr uint64_t kRecords = 1'000'000;
constexpr int kClients = 8;
constexpr double kOffered = 800'000.0 * 0.8;
constexpr Tick kMigrateAt = kSecond / 4;
constexpr Tick kEnd = 2 * kSecond;

struct Row {
  double transfer_mbps = 0;
  double total_mbps = 0;
  double p999_us = 0;  // Over the migration interval.
  double p50_us = 0;
};

Row RunOne(const RocksteadyOptions& options) {
  Cluster cluster(MakeConfig(4, kClients, 1.0));
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);

  LatencyTimeline reads(kSecond / 100, 200);
  std::vector<std::unique_ptr<ClientActor>> actors;
  for (int c = 0; c < kClients; c++) {
    ClientActorConfig actor_config;
    actor_config.ops_per_second = kOffered / kClients;
    actor_config.max_outstanding = 32;
    actor_config.stop_time = kEnd;
    actors.push_back(
        std::make_unique<ClientActor>(kTable, &cluster.client(c), &workload, actor_config));
    actors.back()->set_read_latency(&reads);
    actors.back()->Start();
  }

  std::optional<MigrationStats> stats;
  cluster.sim().At(kMigrateAt, [&] {
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, options,
                             [&](const MigrationStats& s) { stats = s; });
  });
  cluster.sim().RunUntil(kEnd);

  Row row;
  if (stats.has_value()) {
    row.transfer_mbps = static_cast<double>(stats->bytes_pulled) /
                        static_cast<double>(stats->last_pull_time - stats->start_time) * 1e3;
    row.total_mbps = static_cast<double>(stats->bytes_pulled) /
                     static_cast<double>(stats->end_time - stats->start_time) * 1e3;
    // Latency over the migration interval: worst per-window 99.9th and mean
    // median across the 10 ms windows the migration spans.
    const size_t first = static_cast<size_t>(stats->start_time / reads.window());
    const size_t last = static_cast<size_t>(stats->end_time / reads.window());
    double p999 = 0;
    double p50 = 0;
    size_t windows = 0;
    for (size_t w = first; w <= last && w < reads.NumWindows(); w++) {
      if (reads.Count(w) == 0) {
        continue;
      }
      p999 = std::max(p999, static_cast<double>(reads.Percentile(w, 0.999)));
      p50 += static_cast<double>(reads.Percentile(w, 0.5));
      windows++;
    }
    row.p999_us = p999 / 1e3;
    row.p50_us = windows == 0 ? 0 : p50 / static_cast<double>(windows) / 1e3;
  }
  return row;
}

void Print(const char* label, const Row& row) {
  std::printf("%-34s %14.0f %14.0f %10.1f %10.1f\n", label, row.transfer_mbps, row.total_mbps,
              row.p50_us, row.p999_us);
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Migration design-knob ablations (YCSB-B at 80%% source dispatch load)\n");
  std::printf("=====================================================================\n");
  std::printf("%-34s %14s %14s %10s %10s\n", "configuration", "transfer MB/s", "total MB/s",
              "p50(us)", "p999(us)");

  {
    RocksteadyOptions options;
    Print("default (8 parts, 20KB, batch 16)", RunOne(options));
  }
  for (size_t parts : {1u, 2u, 4u, 16u}) {
    RocksteadyOptions options;
    options.num_partitions = parts;
    char label[64];
    std::snprintf(label, sizeof(label), "partitions = %zu", parts);
    Print(label, RunOne(options));
  }
  for (uint32_t budget : {4u * 1024, 64u * 1024, 256u * 1024}) {
    RocksteadyOptions options;
    options.pull_budget_bytes = budget;
    char label[64];
    std::snprintf(label, sizeof(label), "pull budget = %u KB", budget / 1024);
    Print(label, RunOne(options));
  }
  for (size_t batch : {1u, 4u, 64u}) {
    RocksteadyOptions options;
    options.priority_pull_batch = batch;
    char label[64];
    std::snprintf(label, sizeof(label), "PP batch = %zu", batch);
    Print(label, RunOne(options));
  }
  {
    RocksteadyOptions options;
    options.lazy_rereplication = false;
    Print("sync re-replication (ablation)", RunOne(options));
  }
  {
    RocksteadyOptions options;
    options.max_replay_backlog = 1;
    Print("replay backlog = 1", RunOne(options));
  }
  return 0;
}
