// Table 1: experimental cluster configuration — the paper's testbed next to
// the simulated substitute this reproduction runs on.
#include <cstdio>

#include "bench/experiment_common.h"

int main() {
  using namespace rocksteady;
  const CostModel costs;
  const MasterConfig master;

  std::printf("Table 1: Experimental cluster configuration\n");
  std::printf("===========================================\n\n");
  std::printf("%-12s | %-42s | %s\n", "", "Paper (CloudLab c6220)", "This reproduction");
  std::printf("%-12s-+-%-42s-+-%s\n", "------------", std::string(42, '-').c_str(),
              std::string(40, '-').c_str());
  std::printf("%-12s | %-42s | %s\n", "CPU", "2x Xeon E5-2650v2 2.6 GHz, 16 cores",
              "simulated cores (discrete-event)");
  std::printf("%-12s | %-42s | 1 dispatch + %d workers per server\n", "Cores/server",
              "1 dispatch + 12 workers (+3 reserved)", master.num_workers);
  std::printf("%-12s | %-42s | %s\n", "RAM", "64 GB DDR3", "host RAM (scaled datasets)");
  std::printf("%-12s | %-42s | %.0f GB/s links, %llu ns propagation\n", "NIC",
              "Mellanox FDR CX3 40 Gbps + DPDK", costs.net_bandwidth_bps / 1e9,
              static_cast<unsigned long long>(costs.net_propagation_ns));
  std::printf("%-12s | %-42s | %s\n", "Switch", "36-port Mellanox SX6036G",
              "ideal fabric (per-NIC egress serialization)");
  std::printf("%-12s | %-42s | %s\n", "OS", "Ubuntu 15.04, DPDK 16.11",
              "single-process deterministic simulation");
  std::printf("%-12s | %-42s | %d servers + coordinator + clients per run\n", "Nodes",
              "24 (1 coord, 8 clients, 15 servers)", 0);
  std::printf("\nCalibrated cost-model anchors (paper measurement -> model value):\n");
  std::printf("  end-to-end read ~6 us    : dispatch %llu ns + worker %llu ns + 2x%llu ns prop\n",
              static_cast<unsigned long long>(costs.dispatch_per_rpc_ns),
              static_cast<unsigned long long>(costs.read_op_ns),
              static_cast<unsigned long long>(costs.net_propagation_ns));
  std::printf("  durable write ~15 us     : worker %llu ns + replication %.1f ns/B to %d backups\n",
              static_cast<unsigned long long>(costs.write_op_ns),
              costs.replication_src_per_byte_ns, master.replication_factor);
  std::printf("  source pull 5.7 GB/s @16 : %llu ns/record + %.2f ns/B\n",
              static_cast<unsigned long long>(costs.pull_per_record_ns), costs.pull_per_byte_ns);
  std::printf("  target replay 3 GB/s @16 : %llu ns/record + %.2f ns/B\n",
              static_cast<unsigned long long>(costs.replay_per_record_ns),
              costs.replay_per_byte_ns);
  std::printf("  replication ~380 MB/s    : %.1f ns/B master-side\n",
              costs.replication_src_per_byte_ns);
  std::printf("  baseline ladder (Fig.5)  : scan %.2f + copy %.2f + tx %.2f + replay %.1f ns/B\n",
              costs.baseline_scan_per_byte_ns, costs.baseline_copy_per_byte_ns,
              costs.baseline_tx_per_byte_ns, costs.baseline_replay_per_byte_ns);
  return 0;
}
