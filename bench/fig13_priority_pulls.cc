// Figures 13 and 14: asynchronous batched PriorityPulls vs. the naive
// synchronous design, with background Pulls disabled.
//
// §4.4: async batched PriorityPulls restore the *median* latency almost
// immediately (the target serves hot records as soon as they arrive, no
// worker ever stalls); synchronous single-record PriorityPulls jitter the
// median and burn target workers that sit waiting for the source (visible
// as raised worker utilization, Figure 14b), though their 99.9th is a bit
// lower since responses go straight to waiting clients.
#include <cstdio>
#include <cstring>

#include "bench/experiment_common.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
constexpr uint64_t kRecords = 2'000'000;
constexpr int kClients = 8;
constexpr double kOfferedOpsPerSecond = 800'000.0 * 0.8;
constexpr Tick kWindow = kSecond / 10;
constexpr int kNumWindows = 30;
constexpr Tick kMigrateAt = kSecond / 2;

void RunVariant(const char* name, bool sync_priority_pulls) {
  Cluster cluster(MakeConfig(4, kClients, 1.0));
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);

  LatencyTimeline reads(kWindow, kNumWindows);
  UtilizationTimeline src_dispatch(kWindow, kNumWindows);
  UtilizationTimeline src_worker(kWindow, kNumWindows);
  UtilizationTimeline tgt_dispatch(kWindow, kNumWindows);
  UtilizationTimeline tgt_worker(kWindow, kNumWindows);
  cluster.master(0).cores().set_dispatch_util(&src_dispatch);
  cluster.master(0).cores().set_worker_util(&src_worker);
  cluster.master(1).cores().set_dispatch_util(&tgt_dispatch);
  cluster.master(1).cores().set_worker_util(&tgt_worker);

  const Tick experiment_end = static_cast<Tick>(kNumWindows) * kWindow;
  std::vector<std::unique_ptr<ClientActor>> actors;
  for (int c = 0; c < kClients; c++) {
    ClientActorConfig actor_config;
    actor_config.ops_per_second = kOfferedOpsPerSecond / kClients;
    actor_config.max_outstanding = 32;
    actor_config.stop_time = experiment_end;
    actors.push_back(
        std::make_unique<ClientActor>(kTable, &cluster.client(c), &workload, actor_config));
    actors.back()->set_read_latency(&reads);
    actors.back()->Start();
  }

  cluster.sim().At(kMigrateAt, [&] {
    RocksteadyOptions options;
    options.background_pulls = false;  // §4.4: no background Pulls.
    options.sync_priority_pulls = sync_priority_pulls;
    StartRocksteadyMigration(&cluster, kTable, kMid, ~0ull, 0, 1, options, nullptr);
  });
  cluster.sim().RunUntil(experiment_end);

  std::printf("\n--- %s ---\n", name);
  std::printf("%6s %10s %10s | %8s %8s %8s %8s\n", "t(s)", "med(us)", "p999(us)", "srcDisp",
              "tgtDisp", "srcWork", "tgtWork");
  for (int w = 0; w < kNumWindows; w++) {
    const auto i = static_cast<size_t>(w);
    std::printf("%6.1f %10.1f %10.1f | %8.2f %8.2f %8.2f %8.2f\n",
                static_cast<double>(w) * 0.1,
                static_cast<double>(reads.Percentile(i, 0.5)) / 1e3,
                static_cast<double>(reads.Percentile(i, 0.999)) / 1e3,
                src_dispatch.ActiveCores(i), tgt_dispatch.ActiveCores(i),
                src_worker.ActiveCores(i), tgt_worker.ActiveCores(i));
  }
  PrintNetworkFaultCounters(cluster);
}

}  // namespace
}  // namespace rocksteady

int main(int argc, char** argv) {
  using namespace rocksteady;
  std::printf("Figures 13/14: PriorityPull designs without background Pulls\n");
  std::printf("=============================================================\n");
  std::printf("YCSB-B theta=0.99; ownership transfers at t=0.5 s; no bulk Pulls, so all\n");
  std::printf("misses resolve via PriorityPulls only.\n");

  const char* only = argc > 1 ? argv[1] : "all";
  if (std::strcmp(only, "all") == 0 || std::strcmp(only, "async") == 0) {
    RunVariant("(a) Async and batched PriorityPulls", false);
  }
  if (std::strcmp(only, "all") == 0 || std::strcmp(only, "sync") == 0) {
    RunVariant("(b) Sync and single-record PriorityPulls", true);
  }
  return 0;
}
