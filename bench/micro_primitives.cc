// Micro-benchmarks for the wall-clock-performance-critical primitives: key
// hashing, CRC32C, Zipfian generation, hash-table ops, log append, replay,
// and the event queue. These measure *real* time (google-benchmark), unlike
// the figure drivers, which measure simulated time.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/zipfian.h"
#include "src/hashtable/hash_table.h"
#include "src/log/log.h"
#include "src/sim/cost_model.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/store/object_manager.h"

namespace rocksteady {
namespace {

void BM_Murmur3(benchmark::State& state) {
  const std::string key(static_cast<size_t>(state.range(0)), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(key));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Murmur3)->Arg(30)->Arg(128)->Arg(1024);

void BM_Crc32c(benchmark::State& state) {
  const std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(128)->Arg(1024)->Arg(65536);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator gen(1'000'000, 0.99);
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_HashTableLookup(benchmark::State& state) {
  HashTable table(20);
  constexpr uint64_t kEntries = 1'000'000;
  for (uint64_t i = 0; i < kEntries; i++) {
    table.Insert(Mix64(i), LogRef(1, static_cast<uint32_t>(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(Mix64(i++ % kEntries)));
  }
}
BENCHMARK(BM_HashTableLookup);

void BM_HashTableInsert(benchmark::State& state) {
  HashTable table(20);
  uint64_t i = 0;
  for (auto _ : state) {
    table.Insert(Mix64(i++), LogRef(1, 0));
  }
}
BENCHMARK(BM_HashTableInsert);

void BM_LogAppend(benchmark::State& state) {
  Log log(1 << 20);
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.AppendObject(1, Mix64(i++), "key", value, 1));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LogAppend)->Arg(100)->Arg(1024);

void BM_ObjectManagerWrite(benchmark::State& state) {
  ObjectManager om;
  const std::string value(100, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(i++ % 100'000);
    benchmark::DoNotOptimize(om.Write(1, key, HashKey(key), value));
  }
}
BENCHMARK(BM_ObjectManagerWrite);

void BM_EventQueue(benchmark::State& state) {
  // Event throughput bounds how fast experiments run in wall-clock time.
  Simulator sim;
  for (auto _ : state) {
    sim.After(1, [] {});
    sim.RunUntil(sim.now() + 1);
  }
}
BENCHMARK(BM_EventQueue);

void BM_EventDispatch(benchmark::State& state) {
  // Full schedule -> dispatch -> free cost per event with a populated
  // calendar: `range(0)` concurrent timer chains keep the ring occupied the
  // way a real run does, so this reads out the engine's per-dispatch ns/op
  // rather than the empty-queue fast path BM_EventQueue measures.
  const int chains = static_cast<int>(state.range(0));
  Simulator sim;
  struct Chain {
    Simulator* sim;
    Tick period;
    void Step() {
      sim->At(sim->now() + period, [this] { Step(); });
    }
  };
  std::vector<Chain> timers(static_cast<size_t>(chains), Chain{&sim, 100});
  for (int i = 0; i < chains; i++) {
    sim.At(static_cast<Tick>(i), [&timers, i] { timers[static_cast<size_t>(i)].Step(); });
  }
  sim.RunUntil(10'000);  // Warm up: slabs allocated, window sliding.
  size_t processed = sim.events_processed();
  for (auto _ : state) {
    // Each 100 ns of simulated time dispatches one event per chain.
    sim.RunUntil(sim.now() + 100);
  }
  processed = sim.events_processed() - processed;
  state.SetItemsProcessed(static_cast<int64_t>(processed));
}
BENCHMARK(BM_EventDispatch)->Arg(1)->Arg(32)->Arg(256);

void BM_NetworkSend(benchmark::State& state) {
  // One Network::Send plus its delivery: link arbitration, serialization
  // charging, the pooled delivery event, and the inline NetFn dispatch.
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  uint64_t delivered = 0;
  for (auto _ : state) {
    net.Send(a, b, /*wire_bytes=*/100, [&delivered] { delivered++; });
    sim.Run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_NetworkSend);

}  // namespace
}  // namespace rocksteady

BENCHMARK_MAIN();
