// Rebalancer figure: "Autonomous rebalancing of a shifting Zipfian hot spot."
//
// Four masters each own a quarter of the hash space; an open-loop Zipfian
// workload aims 80% of its traffic at one master's quarter, then shifts the
// hot spot to a different master's quarter mid-run. Two otherwise identical
// runs (same seed, same telemetry taps): planner OFF (the hot master rides
// out the skew) vs planner ON (telemetry piggybacked on ping replies feeds
// the coordinator's planner, which splits the hot tablet at histogram
// boundaries and drives Rocksteady migrations until load levels out, then
// re-chases the hot spot after it shifts).
//
// Reported per phase: client p99.9 latency and the per-master load spread
// (max/mean of served ops). The rebalancer must strictly win on both.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/experiment_common.h"
#include "src/common/hash.h"
#include "src/common/zipfian.h"
#include "src/migration/rocksteady_target.h"
#include "src/rebalance/planner.h"
#include "src/rebalance/telemetry.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr uint64_t kSeed = 42;
constexpr int kMasters = 4;
constexpr int kClients = 8;
constexpr uint64_t kRecords = 200'000;
constexpr KeyHash kQuarter = KeyHash{1} << 62;

// Masters are dispatch-bound at ~1M ops/s each (~1 us of dispatch per RPC).
// 900k ops/s offered with 80% aimed at one quarter puts the hot master near
// saturation until the planner spreads its quarter.
constexpr double kOfferedOpsPerSecond = 900'000.0;
constexpr double kHotFraction = 0.8;
constexpr double kZipfTheta = 0.99;
constexpr double kWriteFraction = 0.05;

// Two phases: hot spot on master 0's quarter, then on master 2's.
constexpr Tick kPhaseLength = 500 * kMillisecond;
constexpr int kNumPhases = 2;
constexpr size_t kHotQuarterByPhase[kNumPhases] = {0, 2};

struct PhaseMetrics {
  uint64_t p999_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t ops_completed = 0;
  std::vector<uint64_t> served_per_master;

  double Spread() const {
    uint64_t max = 0, total = 0;
    for (uint64_t s : served_per_master) {
      max = std::max(max, s);
      total += s;
    }
    const double mean = static_cast<double>(total) / served_per_master.size();
    return mean == 0 ? 0 : static_cast<double>(max) / mean;
  }
};

struct RunResult {
  PhaseMetrics phase[kNumPhases];
  uint64_t splits = 0;
  uint64_t migrations = 0;
};

RunResult Run(bool planner_on) {
  Cluster cluster(MakeConfig(kMasters, kClients, 1.0, kSeed));
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  SpreadTableAcross(cluster, kTable, kMasters);
  cluster.LoadTable(kTable, kRecords, 30, 100);
  Simulator& sim = cluster.sim();

  // Key pools per quarter: the workload aims its hot mass at one master's
  // hash quarter, which ScrambledZipfian alone cannot do (it spreads hot
  // keys uniformly over the hash space).
  std::vector<std::vector<std::string>> quarter_pool(kMasters);
  std::vector<std::string> all_keys;
  for (uint64_t i = 0; i < kRecords; i++) {
    std::string key = Cluster::MakeKey(i, 30);
    quarter_pool[HashKey(kTable, key) / kQuarter].push_back(key);
    all_keys.push_back(std::move(key));
  }

  // Identical telemetry taps in both runs (same event stream either way);
  // only the planner differs.
  ClusterTelemetry telemetry(&cluster);
  std::unique_ptr<RebalancePlanner> planner;
  if (planner_on) {
    planner = std::make_unique<RebalancePlanner>(&cluster);
    planner->Start();
  }
  cluster.coordinator().StartFailureDetector();

  // Per-master served-op counters, chained in front of the telemetry tap.
  RunResult result;
  for (int p = 0; p < kNumPhases; p++) {
    result.phase[p].served_per_master.assign(kMasters, 0);
  }
  for (int m = 0; m < kMasters; m++) {
    MasterServer& master = cluster.master(static_cast<size_t>(m));
    auto inner = master.on_access;
    master.on_access = [&result, &sim, m, inner](TableId table, KeyHash hash, bool is_write,
                                                 size_t bytes) {
      const int p = std::min<int>(static_cast<int>(sim.now() / kPhaseLength), kNumPhases - 1);
      result.phase[p].served_per_master[static_cast<size_t>(m)]++;
      if (inner) {
        inner(table, hash, is_write, bytes);
      }
    };
  }

  // Open-loop Zipfian pump: 80% of ops draw (Zipfian-ranked) from the
  // current hot quarter's pool, the rest uniformly from the whole table.
  LatencyTimeline latency(kPhaseLength, kNumPhases);
  Random ops_rng(kSeed * 31 + 5);
  ZipfianGenerator hot_rank(quarter_pool[0].size(), kZipfTheta);
  const Tick op_gap = static_cast<Tick>(1e9 / kOfferedOpsPerSecond);
  const Tick experiment_end = kNumPhases * kPhaseLength;
  uint64_t op_index = 0;
  std::function<void()> pump = [&] {
    if (sim.now() >= experiment_end) {
      return;
    }
    const int phase =
        std::min<int>(static_cast<int>(sim.now() / kPhaseLength), kNumPhases - 1);
    const auto& hot_pool = quarter_pool[kHotQuarterByPhase[phase]];
    std::string key;
    if (ops_rng.NextDouble() < kHotFraction) {
      key = hot_pool[hot_rank.Next(ops_rng) % hot_pool.size()];
    } else {
      key = all_keys[ops_rng.Uniform(all_keys.size())];
    }
    RamCloudClient& client = cluster.client(op_index % cluster.num_clients());
    const Tick issued = sim.now();
    if (ops_rng.NextDouble() < kWriteFraction) {
      client.Write(kTable, key, std::string(100, 'w'), [&latency, &sim, issued](Status) {
        latency.Record(sim.now(), sim.now() - issued);
      });
    } else {
      client.Read(kTable, key, [&latency, &sim, issued](Status, const std::string&) {
        latency.Record(sim.now(), sim.now() - issued);
      });
    }
    op_index++;
    sim.After(op_gap, pump);
  };
  sim.After(op_gap, pump);

  sim.RunUntil(experiment_end);
  if (planner) {
    planner->Stop();
  }
  cluster.coordinator().StopFailureDetector();
  sim.Run();

  for (int p = 0; p < kNumPhases; p++) {
    result.phase[p].p999_ns = latency.Percentile(static_cast<size_t>(p), 0.999);
    result.phase[p].p50_ns = latency.Percentile(static_cast<size_t>(p), 0.5);
    result.phase[p].ops_completed = latency.Count(static_cast<size_t>(p));
  }
  result.splits = cluster.coordinator().splits_performed();
  result.migrations = planner ? planner->stats().migrations_started : 0;
  return result;
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Autonomous rebalancing of a shifting Zipfian hot spot\n");
  std::printf("=====================================================\n");
  std::printf(
      "4 masters, %.0fk ops/s offered, %.0f%% of traffic Zipfian(%.2f) on one master's\n"
      "hash quarter; the hot spot shifts from master 0's quarter to master 2's at t=%.1fs.\n\n",
      kOfferedOpsPerSecond / 1e3, kHotFraction * 100, kZipfTheta,
      static_cast<double>(kPhaseLength) / 1e9);

  const RunResult off = Run(/*planner_on=*/false);
  const RunResult on = Run(/*planner_on=*/true);

  Scale scale;
  std::printf("%-8s %-10s %12s %12s %14s %18s\n", "phase", "planner", "p50 (us)", "p99.9 (us)",
              "completed", "load spread (max/mean)");
  for (int p = 0; p < kNumPhases; p++) {
    std::printf("%-8d %-10s %12.1f %12.1f %14llu %18.2f\n", p, "off",
                scale.Us(static_cast<Tick>(off.phase[p].p50_ns)),
                scale.Us(static_cast<Tick>(off.phase[p].p999_ns)),
                static_cast<unsigned long long>(off.phase[p].ops_completed),
                off.phase[p].Spread());
    std::printf("%-8d %-10s %12.1f %12.1f %14llu %18.2f\n", p, "on",
                scale.Us(static_cast<Tick>(on.phase[p].p50_ns)),
                scale.Us(static_cast<Tick>(on.phase[p].p999_ns)),
                static_cast<unsigned long long>(on.phase[p].ops_completed),
                on.phase[p].Spread());
  }
  std::printf("\nplanner actions: %llu tablet splits, %llu migrations\n",
              static_cast<unsigned long long>(on.splits),
              static_cast<unsigned long long>(on.migrations));

  bool wins = true;
  for (int p = 0; p < kNumPhases; p++) {
    wins = wins && on.phase[p].p999_ns < off.phase[p].p999_ns &&
           on.phase[p].Spread() < off.phase[p].Spread();
  }
  std::printf("planner-on strictly wins on p99.9 and load spread in every phase: %s\n",
              wins ? "yes" : "NO");
  return wins ? 0 : 1;
}
