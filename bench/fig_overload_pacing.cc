// Overload figure: client-observed read latency on an already-saturated
// source while a tablet migrates away, with the adaptive pull-pacing
// controller on vs. off.
//
// The load is an open-loop square wave — 1 ms bursts past the source
// worker's saturation point, 3 ms troughs that let the queue drain — the
// shape that makes migration interference visible: each full-size unpaced
// Pull (and its replay on the target) occupies a worker non-preemptibly, and
// whatever remnant is still running when a burst lands delays that burst's
// entire queue. The paced run reads the source-load signals piggybacked on
// pull replies and shrinks its window/budget to the floor while bursts keep
// arriving, then recovers once the load clears.
//
// Output: per-window read median/p99.9 and pull bytes for both modes, then
// a summary with migration duration, AIMD backoffs, admission-control shed
// counts, and the post-migration-start tail comparison.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <vector>

#include "bench/experiment_common.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
// Migrate the top quarter of the hash space: the source keeps ~3/4 of the
// client load, so its bursts stay past saturation for the whole run.
constexpr KeyHash kSliceStart = 0xC000'0000'0000'0000ull;
constexpr uint64_t kRecords = 12'000;
constexpr Tick kBurstPhase = 1 * kMillisecond;
constexpr Tick kTroughPhase = 3 * kMillisecond;
constexpr Tick kBurstGap = 12 * kMicrosecond;    // ~1.7x the ~21 us/op service.
constexpr Tick kTroughGap = 100 * kMicrosecond;  // ~0.2x: queues drain fully.
constexpr Tick kMigrateAt = 6 * kMillisecond;    // Mid-trough, queue drained.
constexpr Tick kOpsStop = 40 * kMillisecond;
constexpr Tick kWindow = 2 * kMillisecond;
constexpr int kNumWindows = 24;
constexpr uint64_t kSeed = 42;

struct RunResult {
  LatencyTimeline reads{kWindow, kNumWindows};
  CounterTimeline pulled{kWindow, kNumWindows};
  std::vector<Tick> sampled;  // Read latencies issued after kMigrateAt + 2 ms.
  std::optional<MigrationStats> stats;
  uint64_t client_sheds = 0;
  uint64_t retry_later = 0;
};

RunResult RunMode(bool pacing) {
  RunResult result;

  ClusterConfig config;
  config.num_masters = 4;
  config.num_clients = 2;
  config.seed = kSeed;
  config.master.num_workers = 1;
  config.master.hash_table_log2_buckets = 14;
  config.master.segment_size = 64 * 1024;
  // Worker-bound ops (one worker saturates at a modest rate, dispatch keeps
  // headroom) and record-bound pulls (an unpaced 32 KB pull occupies the
  // worker ~1 ms — the non-preemptible remnant bursts queue behind).
  config.costs.read_op_ns = 20'000;
  config.costs.write_op_ns = 24'000;
  config.costs.pull_per_record_ns = 4'000;

  Cluster cluster(config);
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);
  Simulator& sim = cluster.sim();

  RocksteadyOptions options;
  options.adaptive_pacing = pacing;
  options.pull_budget_bytes = 32 * 1024;
  options.num_partitions = 2;

  sim.At(kMigrateAt, [&] {
    auto* manager =
        StartRocksteadyMigration(&cluster, kTable, kSliceStart, ~0ull, 0, 1, options,
                                 [&](const MigrationStats& s) { result.stats = s; });
    manager->set_bytes_timeline(&result.pulled);
  });

  YcsbConfig ycsb = YcsbConfig::WorkloadB();
  ycsb.num_records = kRecords;
  YcsbWorkload workload(ycsb);
  Random ops_rng(kSeed * 31 + 5);
  uint64_t op_index = 0;

  std::function<void()> pump = [&] {
    if (sim.now() >= kOpsStop) {
      return;
    }
    YcsbWorkload::Op op = workload.NextOp(ops_rng);
    RamCloudClient& client = cluster.client(op_index % cluster.num_clients());
    if (op.is_read) {
      const Tick issued = sim.now();
      client.Read(kTable, op.key, [&result, &sim, issued](Status s, const std::string&) {
        if (s != Status::kOk) {
          return;
        }
        result.reads.Record(sim.now(), sim.now() - issued);
        if (issued >= kMigrateAt + 2 * kMillisecond) {
          result.sampled.push_back(sim.now() - issued);
        }
      });
    } else {
      client.Write(kTable, op.key, "overload-" + std::to_string(op_index), [](Status) {});
    }
    op_index++;
    const bool burst = sim.now() % (kBurstPhase + kTroughPhase) < kBurstPhase;
    sim.After(burst ? kBurstGap : kTroughGap, pump);
  };
  sim.After(kBurstGap, pump);
  sim.Run();

  result.client_sheds = cluster.master(0).client_sheds();
  for (size_t c = 0; c < cluster.num_clients(); c++) {
    result.retry_later += cluster.client(c).retry_later_retries();
  }
  std::sort(result.sampled.begin(), result.sampled.end());
  return result;
}

Tick Quantile(const std::vector<Tick>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  const auto idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

void PrintRun(const char* name, const RunResult& r) {
  Scale scale{1.0};
  std::printf("\n--- %s ---\n", name);
  std::printf("%7s %8s %9s %10s %10s\n", "t(ms)", "reads", "med(us)", "p999(us)", "pull kB/s");
  for (int w = 0; w < kNumWindows; w++) {
    const auto i = static_cast<size_t>(w);
    std::printf("%7.0f %8llu %9.1f %10.1f %10.0f\n",
                static_cast<double>(r.reads.WindowStart(i)) / 1e6,
                static_cast<unsigned long long>(r.reads.Count(i)),
                scale.Us(r.reads.Percentile(i, 0.5)), scale.Us(r.reads.Percentile(i, 0.999)),
                scale.PerSecond(static_cast<double>(r.pulled.Count(i)), kWindow) / 1e3);
  }
  if (r.stats.has_value()) {
    const MigrationStats& s = *r.stats;
    std::printf("summary: migration %.2f ms (%llu pulls, %.0f kB); AIMD backoffs %llu; "
                "pulls shed by source %llu; clients shed %llu; kRetryLater retries %llu\n",
                s.DurationSeconds() * 1e3, static_cast<unsigned long long>(s.pulls_completed),
                static_cast<double>(s.bytes_pulled) / 1e3,
                static_cast<unsigned long long>(s.pacing_backoffs),
                static_cast<unsigned long long>(s.pull_rejections),
                static_cast<unsigned long long>(r.client_sheds),
                static_cast<unsigned long long>(r.retry_later));
  }
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Overload pacing figure: square-wave YCSB-B past source saturation\n"
              "(1 ms bursts @ ~1.7x, 3 ms troughs @ ~0.2x), top-quarter migration at "
              "t=%.0f ms.\n", static_cast<double>(kMigrateAt) / 1e6);

  RunResult paced = RunMode(/*pacing=*/true);
  RunResult unpaced = RunMode(/*pacing=*/false);
  PrintRun("adaptive pacing ON", paced);
  PrintRun("adaptive pacing OFF", unpaced);

  std::printf("\nsteady-state read tail (reads issued after t=%.0f ms):\n",
              static_cast<double>(kMigrateAt + 2 * kMillisecond) / 1e6);
  std::printf("%18s %10s %10s %10s\n", "", "p50(us)", "p99(us)", "p999(us)");
  std::printf("%18s %10.1f %10.1f %10.1f\n", "pacing ON",
              static_cast<double>(Quantile(paced.sampled, 0.5)) / 1e3,
              static_cast<double>(Quantile(paced.sampled, 0.99)) / 1e3,
              static_cast<double>(Quantile(paced.sampled, 0.999)) / 1e3);
  std::printf("%18s %10.1f %10.1f %10.1f\n", "pacing OFF",
              static_cast<double>(Quantile(unpaced.sampled, 0.5)) / 1e3,
              static_cast<double>(Quantile(unpaced.sampled, 0.99)) / 1e3,
              static_cast<double>(Quantile(unpaced.sampled, 0.999)) / 1e3);
  return 0;
}
