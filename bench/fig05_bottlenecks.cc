// Figure 5: "Bottlenecks using log replay for migration."
//
// Migrates half of a table with RAMCloud's pre-existing migration, five
// times, each skipping one more phase of the protocol:
//   Full -> Skip Re-replication -> Skip Replay on Target -> Skip Tx to
//   Target -> Skip Copy for Tx
// and reports the per-window and steady-state migration rate of each.
//
// Paper result: ~130 / ~180 / ~600 / ~710 / ~1150 MB/s. The paper migrated
// 7 GB; this driver migrates a scaled-down tablet (rates are unaffected by
// the amount moved).
#include <cstdio>
#include <optional>

#include "bench/experiment_common.h"
#include "src/migration/ramcloud_migration.h"
#include "src/migration/rocksteady_target.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr KeyHash kMid = 1ull << 63;
// ~730K records x ~170 B entries ~= 124 MB of log; ~62 MB migrates.
constexpr uint64_t kRecords = 730'000;

struct VariantResult {
  std::string name;
  double rate_mbps = 0;
  double seconds = 0;
  std::vector<double> timeline_mbps;
};

VariantResult RunVariant(const std::string& name, const BaselineMigrateOptions& options) {
  Cluster cluster(MakeConfig(4, 1, /*dilation=*/1.0));
  EnableMigration(&cluster);
  cluster.CreateTable(kTable, 0);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  CounterTimeline bytes_moved(kSecond / 10, 600);
  std::optional<BaselineStats> stats;
  cluster.coordinator().SplitTablet(kTable, kMid);
  auto* migration = StartBaselineMigration(&cluster, kTable, kMid, ~0ull, 0, 1, options,
                                           [&](const BaselineStats& s) { stats = s; });
  migration->set_bytes_timeline(&bytes_moved);
  cluster.sim().Run();

  VariantResult result;
  result.name = name;
  if (stats.has_value()) {
    result.rate_mbps = stats->RateMBps();
    result.seconds = stats->DurationSeconds();
  }
  for (size_t w = 0; w < bytes_moved.NumWindows(); w++) {
    if (bytes_moved.Count(w) == 0 && w > 2) {
      break;
    }
    result.timeline_mbps.push_back(bytes_moved.Rate(w) / 1e6);
  }
  return result;
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Figure 5: Bottlenecks using log replay for migration\n");
  std::printf("=====================================================\n");
  std::printf("(baseline RAMCloud migration of ~62 MB, one knob removed per line;\n");
  std::printf(" paper: Full~130, SkipReRepl~180, SkipReplay~600, SkipTx~710, SkipCopy~1150 MB/s)\n\n");

  std::vector<VariantResult> results;
  results.push_back(RunVariant("Full", {}));
  results.push_back(RunVariant("Skip Re-replication", {.skip_rereplication = true}));
  results.push_back(
      RunVariant("Skip Replay on Target", {.skip_rereplication = true, .skip_replay = true}));
  results.push_back(RunVariant(
      "Skip Tx to Target", {.skip_rereplication = true, .skip_replay = true, .skip_tx = true}));
  results.push_back(RunVariant("Skip Copy for Tx", {.skip_rereplication = true,
                                                    .skip_replay = true,
                                                    .skip_tx = true,
                                                    .skip_copy = true}));

  std::printf("%-24s %14s %12s\n", "Part of Migration", "Rate (MB/s)", "Duration(s)");
  for (const auto& r : results) {
    std::printf("%-24s %14.0f %12.2f\n", r.name.c_str(), r.rate_mbps, r.seconds);
  }

  std::printf("\nMigration rate over time (MB/s per 100 ms window):\n");
  std::printf("%-8s", "t(s)");
  for (const auto& r : results) {
    std::printf(" %22s", r.name.substr(0, 22).c_str());
  }
  std::printf("\n");
  size_t max_windows = 0;
  for (const auto& r : results) {
    max_windows = std::max(max_windows, r.timeline_mbps.size());
  }
  for (size_t w = 0; w < max_windows; w++) {
    std::printf("%-8.1f", static_cast<double>(w) * 0.1);
    for (const auto& r : results) {
      if (w < r.timeline_mbps.size()) {
        std::printf(" %22.0f", r.timeline_mbps[w]);
      } else {
        std::printf(" %22s", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}
