// Figure 3: "Throughput and CPU load impact of access locality."
//
// 7 servers, 14 clients, back-to-back 7-key multigets. Spread N means each
// multiget's keys come from N servers (7-(N-1) keys from one, 1 from each of
// N-1 others); every server handles the same request rate. Paper result:
// total throughput falls ~4.3x from Spread 1 to Spread 7 — worker-bound with
// locality, dispatch-bound without — and cluster dispatch load saturates by
// spread ~3 while workers go idle.
#include <cstdio>

#include "bench/experiment_common.h"

namespace rocksteady {
namespace {

constexpr TableId kTable = 1;
constexpr int kServers = 7;
constexpr int kClients = 14;
constexpr int kKeysPerGet = 7;
constexpr uint64_t kRecords = 70'000;
constexpr int kConcurrentPerClient = 16;
constexpr Tick kWarmup = kSecond / 50;
constexpr Tick kMeasure = kSecond / 10;

struct SpreadResult {
  int spread = 0;
  double mobjects_per_second = 0;
  double dispatch_load = 0;  // Mean busy fraction of the 7 dispatch cores.
  double worker_load = 0;    // Mean busy fraction of the 7x12 worker cores.
};

SpreadResult RunSpread(int spread) {
  Cluster cluster(MakeConfig(kServers, kClients, 1.0));
  cluster.CreateTable(kTable, 0);
  SpreadTableAcross(cluster, kTable, kServers);
  cluster.LoadTable(kTable, kRecords, 30, 100);

  // Partition loaded keys by owning server.
  std::vector<std::vector<std::string>> pools(kServers);
  for (uint64_t i = 0; i < kRecords; i++) {
    std::string key = Cluster::MakeKey(i, 30);
    const ServerId owner = cluster.coordinator().OwnerOf(kTable, HashKey(kTable, key));
    pools[owner - 1].push_back(std::move(key));
  }

  // Warm every client's tablet cache.
  for (int c = 0; c < kClients; c++) {
    cluster.client(static_cast<size_t>(c))
        .Read(kTable, pools[0][0], [](Status, const std::string&) {});
  }
  cluster.sim().Run();

  uint64_t completed_objects = 0;
  std::vector<std::unique_ptr<MultiGetLoop>> loops;
  for (int c = 0; c < kClients; c++) {
    loops.push_back(std::make_unique<MultiGetLoop>(&cluster, &cluster.client(static_cast<size_t>(c)),
                                                   kTable, &pools, spread, kKeysPerGet,
                                                   &completed_objects));
    loops.back()->Run(kConcurrentPerClient);
  }

  // Warm up, then measure over a fixed window.
  cluster.sim().RunUntil(cluster.sim().now() + kWarmup);
  const uint64_t objects_at_start = completed_objects;
  const Tick t0 = cluster.sim().now();
  for (size_t s = 0; s < cluster.num_masters(); s++) {
    cluster.master(s).cores().ResetBusyCounters();
  }
  cluster.sim().RunUntil(t0 + kMeasure);

  SpreadResult result;
  result.spread = spread;
  result.mobjects_per_second = static_cast<double>(completed_objects - objects_at_start) /
                               (static_cast<double>(kMeasure) / 1e9) / 1e6;
  Tick dispatch_busy = 0;
  Tick worker_busy = 0;
  for (size_t s = 0; s < cluster.num_masters(); s++) {
    dispatch_busy += cluster.master(s).cores().total_dispatch_busy();
    worker_busy += cluster.master(s).cores().total_worker_busy();
  }
  result.dispatch_load =
      static_cast<double>(dispatch_busy) / static_cast<double>(kMeasure) / kServers;
  result.worker_load = static_cast<double>(worker_busy) / static_cast<double>(kMeasure) /
                       (kServers * cluster.master(0).config().num_workers);
  return result;
}

}  // namespace
}  // namespace rocksteady

int main() {
  using namespace rocksteady;
  std::printf("Figure 3: Throughput and CPU load vs. multiget access locality\n");
  std::printf("================================================================\n");
  std::printf("7 servers, 14 clients, back-to-back 7-key multigets (closed loop).\n");
  std::printf("(paper: ~4.3x throughput drop from spread 1 to 7; dispatch saturates,\n");
  std::printf(" workers idle; spread-7 cluster barely beats one server)\n\n");
  std::printf("%8s %22s %22s %20s\n", "spread", "Mobjects/s (total)", "dispatch load (0-1)",
              "worker load (0-1)");
  double spread1 = 0;
  double spread7 = 0;
  for (int spread = 1; spread <= 7; spread++) {
    const SpreadResult r = RunSpread(spread);
    if (spread == 1) {
      spread1 = r.mobjects_per_second;
    }
    if (spread == 7) {
      spread7 = r.mobjects_per_second;
    }
    std::printf("%8d %22.2f %22.2f %20.2f\n", r.spread, r.mobjects_per_second, r.dispatch_load,
                r.worker_load);
  }
  std::printf("\nspread-1 : spread-7 throughput ratio = %.1fx (paper ~4.3x)\n",
              spread1 / spread7);
  std::printf("single-server equivalent at spread 1 = %.2f Mobjects/s\n", spread1 / kServers);
  return 0;
}
